// Deterministic fault-scenario fuzzing under the online invariant
// monitors (check/): generate a batch of random fault timelines from a
// fixed seed, run each against a replicated configuration, and — if any
// run violates an invariant — shrink the scenario to a minimal
// reproducing timeline, print it, and optionally save it for replay.
//
//   $ ./fault_fuzzer                             # 25 scenarios, seed 1
//   $ ./fault_fuzzer --scenarios 100 --seed 42
//   $ ./fault_fuzzer --replay shrunk.fuzz        # re-run a saved case
//   $ ./fault_fuzzer --break-primary-partition   # demo: catch split-brain
//
// Exit status 0 iff every scenario passed every invariant (CI smoke).
#include <cstdio>

#include "fault/fuzz.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

using namespace dbsm;

namespace {

fault::fuzz::config make_config(const util::flag_set& flags) {
  fault::fuzz::config cfg;
  cfg.sites = static_cast<unsigned>(flags.get_int("sites"));
  cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
  cfg.target_responses = flags.get_u64("txns");
  cfg.max_sim_time = seconds(flags.get_int("max-sim-secs"));
  cfg.max_faults = static_cast<unsigned>(flags.get_int("max-faults"));
  cfg.horizon = seconds(flags.get_int("horizon"));
  cfg.allow_recovery = flags.get_bool("recovery");
  cfg.break_primary_partition = flags.get_bool("break-primary-partition");
  cfg.shrink_budget = static_cast<unsigned>(flags.get_int("shrink-budget"));
  if (flags.get_string("ordering") == "rotating")
    cfg.ordering = gcs::ordering_kind::rotating_token;
  return cfg;
}

int report_failure(const fault::fuzz::scenario_spec& spec,
                   const fault::fuzz::run_result& bad,
                   const fault::fuzz::config& cfg,
                   const std::string& out_path) {
  std::printf("VIOLATION: %s\n", bad.detail.c_str());
  std::printf("shrinking (budget %u runs)...\n", cfg.shrink_budget);
  const auto minimal = fault::fuzz::shrink(spec, cfg);
  const auto replay = fault::fuzz::run_spec(minimal, cfg);
  std::printf("minimal reproducing scenario (%zu of %zu events, still %s):\n",
              minimal.events.size(), spec.events.size(),
              replay.ok ? "PASSES (shrink lost the bug?)" : "failing");
  std::printf("%s", fault::fuzz::serialize(minimal).c_str());
  if (!out_path.empty()) {
    if (fault::fuzz::save(minimal, out_path)) {
      std::printf("saved to %s (replay with --replay %s)\n",
                  out_path.c_str(), out_path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", out_path.c_str());
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("scenarios", "25", "number of generated scenarios");
  flags.declare("seed", "1", "first scenario seed (batch uses seed..seed+n-1)");
  flags.declare("sites", "3", "replica sites");
  flags.declare("clients", "24", "TPC-C clients");
  flags.declare("txns", "220", "responses per scenario (0 = run full time)");
  flags.declare("max-sim-secs", "120", "simulated-time cap per scenario");
  flags.declare("max-faults", "4", "max events per generated timeline");
  flags.declare("horizon", "40", "fault windows land in [0, horizon) secs");
  flags.declare("recovery", "true", "allow crash->recover sequences");
  flags.declare("break-primary-partition", "false",
                "disable the majority rule (demo: monitors catch it)");
  flags.declare("ordering", "fixed",
                "total-order protocol under test: fixed or rotating "
                "(timelines for a given seed are identical either way)");
  flags.declare("shrink-budget", "96", "max re-runs while shrinking");
  flags.declare("replay", "", "replay a saved scenario file and exit");
  flags.declare("out", "", "write the shrunk scenario here on failure");
  flags.declare("log", "false", "protocol event logging (debugging replays)");
  if (!flags.parse(argc, argv)) return 1;
  if (flags.get_bool("log")) util::set_log_level(util::log_level::info);

  const fault::fuzz::config cfg = make_config(flags);
  const std::string replay_path = flags.get_string("replay");
  const std::string out_path = flags.get_string("out");

  if (!replay_path.empty()) {
    const auto spec = fault::fuzz::load(replay_path);
    if (!spec) {
      std::fprintf(stderr, "cannot parse scenario file %s\n",
                   replay_path.c_str());
      return 1;
    }
    std::printf("replaying %s (seed %llu, %zu events)\n", replay_path.c_str(),
                static_cast<unsigned long long>(spec->seed),
                spec->events.size());
    const auto r = fault::fuzz::run_spec(*spec, cfg);
    std::printf("%s — %llu committed, %llu responses%s%s\n",
                r.ok ? "ok" : "VIOLATION",
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.responses),
                r.ok ? "" : ": ", r.detail.c_str());
    return r.ok ? 0 : 1;
  }

  const auto n = flags.get_u64("scenarios");
  const auto first_seed = flags.get_u64("seed");
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seed = first_seed + i;
    const auto spec = fault::fuzz::generate(seed, cfg);
    std::printf("[fuzz %llu/%llu] seed %llu: %zu events ... ",
                static_cast<unsigned long long>(i + 1),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(seed), spec.events.size());
    std::fflush(stdout);
    const auto r = fault::fuzz::run_spec(spec, cfg);
    std::printf("%s (%llu committed, %llu responses)\n",
                r.ok ? "ok" : "FAIL",
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.responses));
    if (!r.ok) return report_failure(spec, r, cfg, out_path);
  }
  std::printf("all %llu scenarios passed every invariant\n",
              static_cast<unsigned long long>(n));
  return 0;
}
