// Wide-area replication: the same DBSM stack over a WAN mesh instead of
// the LAN — dissemination falls back to unicast fan-out (§3.4) and the
// total order pays cross-site latency on every update.
//
//   $ ./wan_replication [--latency-ms N] [--clients N]
//
// The paper motivates this direction in §5.2 ("it is realistic to
// consider using the technique for distant database sites connected by a
// wide area network") and concludes that relaxing total order matters in
// WANs (§5.3).
#include <cstdio>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("clients", "150", "TPC-C clients");
  flags.declare("txns", "1500", "responses per run");
  flags.declare("seed", "11", "random seed");
  if (!flags.parse(argc, argv)) return 1;

  util::text_table t;
  t.header({"Network", "tpm", "update p50 (ms)", "read-only p50 (ms)",
            "cert p50 (ms)", "Abort %"});
  for (const sim_duration latency :
       {milliseconds(0), milliseconds(10), milliseconds(25),
        milliseconds(50)}) {
    core::experiment_config cfg;
    cfg.sites = 3;
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    cfg.target_responses = flags.get_u64("txns");
    cfg.seed = flags.get_u64("seed");
    cfg.max_sim_time = seconds(1200);
    std::string label;
    if (latency == 0) {
      label = "LAN (100 Mb/s)";
    } else {
      cfg.use_wan = true;
      cfg.wan.default_latency = latency;
      cfg.wan.access_bandwidth_bps = 10e6;
      // WAN timers: loss detection and suspicion must out-wait the RTT.
      cfg.gcs.nak_delay = latency / 2 + milliseconds(8);
      cfg.gcs.suspect_timeout = milliseconds(300) + 4 * latency;
      label = std::to_string(static_cast<int>(to_millis(latency))) +
              " ms one-way WAN";
    }
    std::fprintf(stderr, "[wan_replication] %s ...\n", label.c_str());
    const auto r = core::run_experiment(cfg);
    if (!r.safety.ok) {
      std::printf("SAFETY VIOLATION: %s\n", r.safety.detail.c_str());
      return 1;
    }
    util::sample_set update_ms, ro_ms;
    for (db::txn_class c = 0;
         c < static_cast<db::txn_class>(r.stats.classes()); ++c) {
      const auto& s = r.stats.of(c).commit_latency_ms;
      for (double v : s.sorted()) {
        if (r.class_is_update[c]) {
          update_ms.add(v);
        } else {
          ro_ms.add(v);
        }
      }
    }
    t.row({label, util::fmt(r.tpm(), 0),
           util::fmt(update_ms.quantile(0.5), 1),
           util::fmt(ro_ms.quantile(0.5), 1),
           util::fmt(r.cert_latency_ms.quantile(0.5), 1),
           util::fmt(r.stats.abort_rate_pct(), 2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::puts(
      "\nUpdate latency absorbs the WAN round-trip through the total "
      "order; read-only\ntransactions terminate locally and stay flat — "
      "exactly why the paper points to\nrelaxed ordering (generic/"
      "optimistic broadcast) for wide-area deployments.");
  return 0;
}
