// The abstraction-layer guarantee (§2.3), live: the very same group
// communication stack that runs inside the simulation runs here on real
// UDP sockets over loopback — three nodes, three OS threads, atomic
// multicast with a fixed sequencer.
//
//   $ ./native_loopback [--nodes N] [--messages N] [--port P]
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "csrt/native_env.hpp"
#include "gcs/group.hpp"
#include "util/flags.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("nodes", "3", "group members (threads)");
  flags.declare("messages", "5", "messages each node multicasts");
  flags.declare("port", "30500", "base UDP port (node i binds port+i)");
  if (!flags.parse(argc, argv)) return 1;

  const auto n = static_cast<unsigned>(flags.get_int("nodes"));
  const auto per_node = static_cast<unsigned>(flags.get_int("messages"));
  const auto base_port =
      static_cast<std::uint16_t>(flags.get_int("port"));

  std::vector<node_id> members;
  for (unsigned i = 0; i < n; ++i) members.push_back(i);

  std::vector<std::unique_ptr<csrt::native_env>> envs;
  std::vector<std::unique_ptr<gcs::group>> groups;
  std::vector<std::vector<std::string>> delivered(n);
  std::atomic<unsigned> total{0};

  for (unsigned i = 0; i < n; ++i) {
    csrt::native_env::config cfg;
    cfg.self = i;
    cfg.peers = members;
    cfg.base_port = base_port;
    envs.push_back(
        std::make_unique<csrt::native_env>(cfg, util::rng(100 + i)));
    gcs::group_config gcfg;
    gcfg.members = members;
    groups.push_back(std::make_unique<gcs::group>(*envs[i], gcfg));
    groups[i]->set_deliver([&, i](node_id, std::uint64_t seq,
                                  util::shared_bytes payload) {
      delivered[i].emplace_back(payload->begin(), payload->end());
      if (i == 0) {
        std::printf("[node 0] delivery #%llu: %s\n",
                    static_cast<unsigned long long>(seq),
                    delivered[0].back().c_str());
      }
      total.fetch_add(1);
    });
  }

  std::vector<std::thread> threads;
  for (unsigned i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      groups[i]->start();
      envs[i]->run();
    });
  }

  std::printf("multicasting %u messages from each of %u nodes over real "
              "UDP sockets...\n", per_node, n);
  for (unsigned k = 0; k < per_node; ++k) {
    for (unsigned i = 0; i < n; ++i) {
      const std::string text =
          "node" + std::to_string(i) + "-msg" + std::to_string(k);
      auto payload =
          std::make_shared<util::bytes>(text.begin(), text.end());
      groups[i]->submit(payload);
    }
  }

  const unsigned expected = n * n * per_node;
  for (int spin = 0; spin < 500 && total.load() < expected; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& e : envs) e->stop();
  for (auto& t : threads) t.join();

  bool identical = true;
  for (unsigned i = 1; i < n; ++i) {
    identical = identical && delivered[i] == delivered[0];
  }
  std::printf("\n%u deliveries at each node; total order %s across all "
              "nodes.\n",
              static_cast<unsigned>(delivered[0].size()),
              identical ? "IDENTICAL" : "DIVERGED");
  return identical && delivered[0].size() == n * per_node ? 0 : 1;
}
