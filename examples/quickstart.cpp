// Quickstart: run a replicated TPC-C database (3 sites, 300 clients) in
// the simulation and print the headline metrics.
//
//   $ ./quickstart [--sites N] [--clients N] [--txns N] [--seed N]
//
// This is the highest-level public API: describe the scenario in an
// experiment_config, call run_experiment, read the result.
#include <cstdio>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("sites", "3", "number of database replicas");
  flags.declare("cpus", "1", "CPUs per site");
  flags.declare("clients", "300", "TPC-C clients (10 per warehouse)");
  flags.declare("txns", "3000", "transactions to run");
  flags.declare("seed", "42", "random seed");
  if (!flags.parse(argc, argv)) return 1;

  core::experiment_config cfg;
  cfg.sites = static_cast<unsigned>(flags.get_int("sites"));
  cfg.cpus_per_site = static_cast<unsigned>(flags.get_int("cpus"));
  cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
  cfg.target_responses = flags.get_u64("txns");
  cfg.seed = flags.get_u64("seed");

  std::printf("Running %u TPC-C clients against %u site(s) x %u CPU...\n",
              cfg.clients, cfg.sites, cfg.cpus_per_site);
  const auto r = core::run_experiment(cfg);

  std::printf("\nsimulated time     %.1f s\n", to_seconds(r.duration));
  std::printf("throughput         %.0f committed tpm\n", r.tpm());
  std::printf("mean latency       %.1f ms\n", r.stats.mean_latency_ms());
  std::printf("abort rate         %.2f %%\n", r.stats.abort_rate_pct());
  std::printf("CPU utilization    %.1f %% (protocol: %.2f %%)\n",
              r.cpu_utilization * 100.0,
              r.protocol_cpu_utilization * 100.0);
  std::printf("disk utilization   %.1f %%\n", r.disk_utilization * 100.0);
  std::printf("network traffic    %.0f KB/s\n", r.network_kbps);
  std::printf("safety check       %s (common prefix: %zu commits)\n",
              r.safety.ok ? "IDENTICAL COMMIT SEQUENCES" : "VIOLATED",
              r.safety.common_prefix);

  // Per-class breakdown straight from the result: class count and names
  // come from the workload that ran, not from a hard-wired benchmark.
  util::text_table t;
  t.header({"Class", "Total", "Committed", "Abort %", "Mean latency (ms)"});
  for (db::txn_class c = 0;
       c < static_cast<db::txn_class>(r.stats.classes()); ++c) {
    const auto& s = r.stats.of(c);
    t.row({r.class_names.at(c), util::fmt(s.total()),
           util::fmt(s.committed), util::fmt(s.abort_rate_pct(), 2),
           util::fmt(s.latency_ms.mean(), 1)});
  }
  std::printf("\n%s", t.to_string().c_str());
  return r.safety.ok ? 0 : 1;
}
