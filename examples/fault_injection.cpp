// Fault-injection campaign (§5.3): subject a replicated configuration to
// the scenarios of the named fault library — the paper's five fault types
// plus the composed/timed scenarios (partition + heal, flaky switch, slow
// replica, cascading crashes) — and verify after each run that all
// operational sites committed exactly the same sequence.
//
//   $ ./fault_injection                        # default campaign
//   $ ./fault_injection --scenario all         # every catalog scenario
//   $ ./fault_injection --scenario flaky_switch
//   $ ./fault_injection --list
//
// This reproduces the paper's use of the tool for automated dependability
// regression testing (§7: "the ability to autonomously run a set of
// realistic load and fault scenarios and automatically check for
// performance or reliability regressions has proved invaluable").
#include <cstdio>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("clients", "120", "TPC-C clients");
  flags.declare("txns", "1500", "responses per scenario");
  flags.declare("seed", "7", "random seed");
  flags.declare("scenario", "campaign",
                "scenario name, 'campaign' (default set), or 'all'");
  flags.declare("read-path", "off",
                "read-only termination: off (paper §5.1 local "
                "certification), certified (broadcast), or fast (read/ "
                "lease snapshots; prints per-site read counters)");
  flags.declare("ordering", "default",
                "total-order protocol: fixed, rotating, or default "
                "(fixed, except for scenarios that target the token)");
  flags.declare("list", "false", "list available scenarios and exit");
  if (!flags.parse(argc, argv)) return 1;

  const std::string ord = flags.get_string("ordering");
  if (ord != "default" && ord != "fixed" && ord != "rotating") {
    std::fprintf(stderr,
                 "unknown --ordering '%s' (default|fixed|rotating)\n",
                 ord.c_str());
    return 1;
  }

  const std::string rp = flags.get_string("read-path");
  if (rp != "off" && rp != "certified" && rp != "fast") {
    std::fprintf(stderr, "unknown --read-path '%s' (off|certified|fast)\n",
                 rp.c_str());
    return 1;
  }
  const read::mode read_mode = rp == "fast"        ? read::mode::fast
                               : rp == "certified" ? read::mode::certified
                                                   : read::mode::off;

  if (flags.get_bool("list")) {
    std::printf("Available scenarios:\n");
    for (const auto& e : fault::scenarios::catalog())
      std::printf("  %-20s %s (>=%u sites)%s\n", e.name, e.description,
                  e.min_sites, e.in_default_campaign ? "" : "  [all only]");
    return 0;
  }

  std::vector<const fault::scenarios::catalog_entry*> selected;
  const std::string sel = flags.get_string("scenario");
  if (sel == "campaign" || sel == "all") {
    for (const auto& e : fault::scenarios::catalog())
      if (sel == "all" || e.in_default_campaign) selected.push_back(&e);
  } else if (const auto* e = fault::scenarios::find(sel)) {
    selected.push_back(e);
  } else {
    std::fprintf(stderr,
                 "unknown scenario '%s' (try --list for the catalog)\n",
                 sel.c_str());
    return 1;
  }

  util::text_table t;
  t.header({"Scenario", "Sites", "Committed", "Abort %", "p99 lat (ms)",
            "Retx", "Views", "Rejoined", "Safety"});
  bool all_safe = true;
  for (const auto* e : selected) {
    fault::scenarios::params prm;
    prm.sites = std::max(3u, e->min_sites);

    core::experiment_config cfg;
    cfg.sites = prm.sites;
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    cfg.target_responses = flags.get_u64("txns");
    cfg.max_sim_time = seconds(900);
    cfg.seed = flags.get_u64("seed");
    cfg.faults = e->make(prm);
    cfg.enable_recovery = e->needs_recovery;
    cfg.replica_cfg.read.path = read_mode;
    if (e->placement_degree > 0)
      cfg.placement = {place::strategy::round_robin, e->placement_degree};
    // Ordering protocol: the flag wins; otherwise token-targeted scenarios
    // run rotating and everything else keeps the fixed-sequencer default
    // (preserving the campaign anchors).
    if (ord == "rotating" || (ord == "default" && e->rotating_token))
      cfg.gcs.ordering = gcs::ordering_kind::rotating_token;
    std::fprintf(stderr, "[fault_injection] %s (%s) ...\n", e->name,
                 gcs::ordering_name(cfg.gcs.ordering));
    const auto r = core::run_experiment(cfg);

    bool ok = r.safety.ok && r.checks.ok;
    if (!r.checks.ok)
      std::fprintf(stderr, "[fault_injection] %s: online monitor: %s\n",
                   e->name, r.checks.summary().c_str());
    if (e->needs_recovery) {
      // A rejoin scenario must end with every recovered site back in the
      // view and converged: its log within one in-flight window of the
      // longest (its prefix consistency is the safety check above).
      std::uint64_t longest = 0;
      for (const auto& s : r.sites)
        longest = std::max(longest, s.committed_log);
      if (r.rejoined_sites() == 0) ok = false;
      for (const auto& s : r.sites) {
        if (s.state == core::cluster::site_status::rejoined &&
            s.committed_log + 50 < longest)
          ok = false;  // non-convergent joiner
      }
    }
    all_safe = all_safe && ok;
    t.row({e->name, util::fmt(static_cast<std::int64_t>(cfg.sites)),
           util::fmt(r.stats.total_committed()),
           util::fmt(r.stats.abort_rate_pct(), 2),
           util::fmt(r.stats.pooled_latency_ms().quantile(0.99), 1),
           util::fmt(static_cast<std::int64_t>(r.retransmissions)),
           util::fmt(static_cast<std::int64_t>(r.view_changes)),
           util::fmt(static_cast<std::int64_t>(r.rejoined_sites())),
           !r.safety.ok || !r.checks.ok ? "VIOLATED"
                                        : (ok ? "ok" : "NO REJOIN")});
    // Per-site read-path accounting, meaningful only when the read path
    // is on (the default table stays untouched otherwise).
    if (read_mode != read::mode::off) {
      for (std::size_t i = 0; i < r.sites.size(); ++i) {
        const auto& s = r.sites[i];
        std::printf("    site %zu: %llu fast, %llu fallback, %llu RO "
                    "broadcasts, %llu lease revocations\n",
                    i, static_cast<unsigned long long>(s.fast_path_reads),
                    static_cast<unsigned long long>(s.fallback_reads),
                    static_cast<unsigned long long>(s.ro_broadcasts),
                    static_cast<unsigned long long>(s.lease_revocations));
      }
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%s\n", all_safe
                            ? "All operational sites committed identical "
                              "sequences under every fault scenario."
                            : "SAFETY VIOLATION DETECTED — see above.");
  return all_safe ? 0 : 1;
}
