// Fault-injection campaign (§5.3): subject one replicated configuration to
// every fault type the paper injects — clock drift, scheduling latency,
// random loss, bursty loss, and a crash — and verify after each run that
// all operational sites committed exactly the same sequence.
//
//   $ ./fault_injection [--clients N] [--txns N]
//
// This reproduces the paper's use of the tool for automated dependability
// regression testing (§7: "the ability to autonomously run a set of
// realistic load and fault scenarios and automatically check for
// performance or reliability regressions has proved invaluable").
#include <cstdio>

#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("clients", "120", "TPC-C clients");
  flags.declare("txns", "1500", "responses per scenario");
  flags.declare("seed", "7", "random seed");
  if (!flags.parse(argc, argv)) return 1;

  struct scenario {
    const char* name;
    fault::plan plan;
  };
  std::vector<scenario> scenarios;
  scenarios.push_back({"no faults", {}});
  {
    fault::plan p;
    p.clock_drift = 0.10;
    scenarios.push_back({"clock drift 10%", p});
  }
  {
    fault::plan p;
    p.sched_latency_max = milliseconds(5);
    scenarios.push_back({"scheduling latency <=5ms", p});
  }
  {
    fault::plan p;
    p.random_loss = 0.05;
    scenarios.push_back({"random loss 5%", p});
  }
  {
    fault::plan p;
    p.bursty_loss = 0.05;
    p.burst_len = 5;
    scenarios.push_back({"bursty loss 5% (len 5)", p});
  }
  {
    fault::plan p;
    p.crashes.push_back({2, seconds(30)});
    scenarios.push_back({"crash site 2 at t=30s", p});
  }

  util::text_table t;
  t.header({"Scenario", "Committed", "Abort %", "p99 lat (ms)", "Retx",
            "Views", "Safety"});
  bool all_safe = true;
  for (const auto& s : scenarios) {
    core::experiment_config cfg;
    cfg.sites = 3;
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    cfg.target_responses = flags.get_u64("txns");
    cfg.max_sim_time = seconds(900);
    cfg.seed = flags.get_u64("seed");
    cfg.faults = s.plan;
    std::fprintf(stderr, "[fault_injection] %s ...\n", s.name);
    const auto r = core::run_experiment(cfg);
    all_safe = all_safe && r.safety.ok;
    t.row({s.name, util::fmt(r.stats.total_committed()),
           util::fmt(r.stats.abort_rate_pct(), 2),
           util::fmt(r.stats.pooled_latency_ms().quantile(0.99), 1),
           util::fmt(static_cast<std::int64_t>(r.retransmissions)),
           util::fmt(static_cast<std::int64_t>(r.view_changes)),
           r.safety.ok ? "ok" : "VIOLATED"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\n%s\n", all_safe
                            ? "All operational sites committed identical "
                              "sequences under every fault type."
                            : "SAFETY VIOLATION DETECTED — see above.");
  return all_safe ? 0 : 1;
}
