// Using the replica API directly, without TPC-C: build a cluster, submit
// hand-crafted transactions (a read-modify-write counter and an escalated
// reporting scan), and watch certification arbitrate cross-site conflicts.
//
//   $ ./custom_workload
#include <cstdio>

#include "cert/rwset.hpp"
#include "core/cluster.hpp"

using namespace dbsm;

namespace {

// A tiny application schema: table 1 = "counters", one tuple per counter.
constexpr unsigned counters_table = 1;

db::txn_request increment(std::uint32_t counter, sim_duration cpu) {
  db::txn_request req;
  const db::item_id tuple = db::make_item(counters_table, 0, 0, counter);
  req.read_set = {tuple};
  req.write_set = {tuple, db::make_granule(counters_table, 0, 0)};
  cert::normalize(req.write_set);
  req.update_bytes = 64;
  db::operation op;
  op.k = db::operation::kind::process;
  op.cpu = cpu;
  req.ops = {op};
  return req;
}

db::txn_request report_scan(sim_duration cpu) {
  db::txn_request req;  // read-only scan over the whole counters table
  req.read_set = {db::make_granule(counters_table, 0, 0)};
  db::operation op;
  op.k = db::operation::kind::process;
  op.cpu = cpu;
  req.ops = {op};
  return req;
}

const char* outcome_str(db::txn_outcome o) { return db::outcome_name(o); }

}  // namespace

int main() {
  core::cluster::config cfg;
  cfg.sites = 2;
  cfg.seed = 3;
  core::cluster c(cfg);
  c.start();

  std::printf("1. Non-conflicting increments at both sites:\n");
  c.sim().schedule_at(milliseconds(50), [&] {
    c.site(0).submit(increment(1, milliseconds(2)), [](db::txn_outcome o) {
      std::printf("   site 0, counter 1: %s\n", outcome_str(o));
    });
    c.site(1).submit(increment(2, milliseconds(2)), [](db::txn_outcome o) {
      std::printf("   site 1, counter 2: %s\n", outcome_str(o));
    });
  });

  c.sim().schedule_at(seconds(1), [&] {
    std::printf("2. Concurrent increments of the SAME counter "
                "(no distributed locks -> certification decides):\n");
    c.site(0).submit(increment(7, milliseconds(2)), [](db::txn_outcome o) {
      std::printf("   site 0, counter 7: %s\n", outcome_str(o));
    });
    c.site(1).submit(increment(7, milliseconds(2)), [](db::txn_outcome o) {
      std::printf("   site 1, counter 7: %s\n", outcome_str(o));
    });
  });

  c.sim().schedule_at(seconds(2), [&] {
    std::printf("3. Long reporting scan racing a concurrent increment "
                "(escalated read aborts):\n");
    c.site(0).submit(report_scan(milliseconds(100)), [](db::txn_outcome o) {
      std::printf("   site 0, scan: %s\n", outcome_str(o));
    });
    c.sim().schedule_after(milliseconds(10), [&] {
      c.site(1).submit(increment(9, milliseconds(1)),
                       [](db::txn_outcome o) {
                         std::printf("   site 1, counter 9: %s\n",
                                     outcome_str(o));
                       });
    });
  });

  c.sim().run_until(seconds(4));

  std::printf("\ncommit logs: site0=%zu entries, site1=%zu entries, "
              "identical=%s\n",
              c.site(0).commit_log().size(), c.site(1).commit_log().size(),
              c.site(0).commit_log() == c.site(1).commit_log() ? "yes"
                                                               : "no");
  return 0;
}
