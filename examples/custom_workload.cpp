// Bringing your own workload: implement core::workload + core::txn_source
// and hand a factory to experiment_config — the harness drives your
// transaction classes through the full replicated stack (clients, group
// communication, certification, stats) exactly as it drives TPC-C.
//
// The example models a tiny "counter service": clients mostly issue
// read-modify-write increments of a small hot counter set, plus an
// occasional escalated reporting scan over the whole table. The scan
// reads the table granule, so certification aborts it whenever a
// concurrent increment committed — the cross-site conflict the paper's
// §3.3 escalation rule exists for.
//
//   $ ./custom_workload [--sites N] [--clients N] [--txns N] [--seed N]
#include <cstdio>

#include "cert/rwset.hpp"
#include "core/experiment.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace dbsm;

namespace {

// A tiny application schema: table 1 = "counters", one tuple per counter.
constexpr unsigned counters_table = 1;
constexpr std::uint32_t counter_count = 64;

enum : db::txn_class { c_increment = 0, c_report = 1, num_classes = 2 };

class counter_source final : public core::txn_source {
 public:
  explicit counter_source(util::rng gen) : rng_(gen) {}

  db::txn_request next(sim_time /*now*/) override {
    db::txn_request req;
    db::operation proc;
    proc.k = db::operation::kind::process;
    if (rng_.bernoulli(0.05)) {
      // Reporting scan: escalated read of the whole counters table.
      req.cls = c_report;
      req.read_set = {db::make_granule(counters_table, 0, 0)};
      proc.cpu = milliseconds(20);
    } else {
      // Read-modify-write of one counter; a quarter of the traffic hits
      // counter 0 so sites race on it.
      req.cls = c_increment;
      const auto counter = static_cast<std::uint32_t>(
          rng_.bernoulli(0.25) ? 0
                               : rng_.uniform_int(1, counter_count - 1));
      const db::item_id tuple =
          db::make_item(counters_table, 0, 0, counter);
      req.read_set = {tuple};
      req.write_set = {tuple, db::make_granule(counters_table, 0, 0)};
      cert::normalize(req.write_set);
      req.update_bytes = 64;
      proc.cpu = milliseconds(2);
    }
    req.ops = {proc};
    return req;
  }

  double think_seconds(util::rng& gen) override {
    return gen.exponential(1.0);
  }

 private:
  util::rng rng_;
};

class counter_workload final : public core::workload {
 public:
  const char* name() const override { return "counters"; }
  std::size_t classes() const override { return num_classes; }
  const char* class_name(db::txn_class cls) const override {
    return cls == c_increment ? "increment" : "report-scan";
  }
  bool is_update_class(db::txn_class cls) const override {
    return cls == c_increment;
  }
  double mean_think_seconds() const override { return 1.0; }
  void prepare(unsigned /*sites*/, unsigned /*clients*/,
               util::rng /*gen*/) override {}
  std::unique_ptr<core::txn_source> make_source(
      const core::client_slot& /*slot*/, util::rng gen) override {
    return std::make_unique<counter_source>(gen);
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("sites", "3", "number of database replicas");
  flags.declare("clients", "30", "counter-service clients");
  flags.declare("txns", "600", "transactions to run");
  flags.declare("seed", "3", "random seed");
  if (!flags.parse(argc, argv)) return 1;

  core::experiment_config cfg;
  cfg.sites = static_cast<unsigned>(flags.get_int("sites"));
  cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
  cfg.target_responses = flags.get_u64("txns");
  cfg.seed = flags.get_u64("seed");
  cfg.max_sim_time = seconds(600);
  cfg.workload = [] { return std::make_unique<counter_workload>(); };

  std::printf("Running the custom '%s' workload: %u clients, %u sites...\n",
              "counters", cfg.clients, cfg.sites);
  const auto r = core::run_experiment(cfg);

  std::printf("\nworkload            %s\n", r.workload_name.c_str());
  std::printf("simulated time      %.1f s\n", to_seconds(r.duration));
  std::printf("throughput          %.0f committed tpm\n", r.tpm());
  std::printf("abort rate          %.2f %%\n", r.stats.abort_rate_pct());
  std::printf("safety check        %s (common prefix: %zu commits)\n",
              r.safety.ok ? "IDENTICAL COMMIT SEQUENCES" : "VIOLATED",
              r.safety.common_prefix);

  util::text_table t;
  t.header({"Class", "Total", "Committed", "Cert aborts", "Abort %"});
  for (db::txn_class c = 0;
       c < static_cast<db::txn_class>(r.stats.classes()); ++c) {
    const auto& s = r.stats.of(c);
    t.row({r.class_names.at(c), util::fmt(s.total()),
           util::fmt(s.committed), util::fmt(s.aborted_cert),
           util::fmt(s.abort_rate_pct(), 2)});
  }
  std::printf("\n%s", t.to_string().c_str());
  std::puts("\nThe report-scan class reads the table granule, so any "
            "concurrent committed\nincrement certifies against it — "
            "escalated reads pay for their coverage in\naborts, while "
            "point-read classes never certify-abort.");
  return r.safety.ok ? 0 : 1;
}
