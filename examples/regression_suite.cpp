// Automated regression suite (§7): "the ability to autonomously run a set
// of realistic load and fault scenarios and automatically check for
// performance or reliability regressions has proved invaluable."
//
//   $ ./regression_suite          # exit code 0 = all gates passed
//
// Each scenario asserts reliability gates (safety, liveness, bounded
// aborts) and performance gates (throughput and latency envelopes around
// the calibrated baselines). Run it after changing any protocol component.
#include <cstdio>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace dbsm;

namespace {

struct gate {
  const char* name;
  core::experiment_config cfg;
  double min_tpm;
  double max_mean_latency_ms;
  double max_abort_pct;
};

core::experiment_config scenario(unsigned sites, unsigned cpus,
                                 unsigned clients) {
  core::experiment_config cfg;
  cfg.sites = sites;
  cfg.cpus_per_site = cpus;
  cfg.clients = clients;
  cfg.target_responses = 2500;
  cfg.max_sim_time = seconds(900);
  cfg.seed = 42;
  return cfg;
}

}  // namespace

int main() {
  std::vector<gate> gates;
  gates.push_back({"centralized 1x1 @250", scenario(1, 1, 250),
                   1150, 120, 4.0});
  gates.push_back({"replicated 3x1 @500", scenario(3, 1, 500),
                   2300, 120, 4.0});
  gates.push_back({"replicated 6x1 @1000", scenario(6, 1, 1000),
                   4800, 150, 5.0});
  {
    auto cfg = scenario(3, 1, 500);
    fault::plan p;
    p.random_loss = 0.05;
    cfg.faults = fault::from_plan(p);
    gates.push_back({"3x1 @500 + 5% loss", cfg, 2200, 250, 6.0});
  }
  {
    auto cfg = scenario(3, 1, 300);
    fault::plan p;
    p.crashes.push_back({2, seconds(25)});
    cfg.faults = fault::from_plan(p);
    gates.push_back({"3x1 @300 + crash", cfg, 1100, 200, 5.0});
  }

  util::text_table t;
  t.header({"Scenario", "tpm", "latency(ms)", "abort(%)", "safety",
            "verdict"});
  bool all_ok = true;
  for (const gate& g : gates) {
    std::fprintf(stderr, "[regression] %s ...\n", g.name);
    const auto r = core::run_experiment(g.cfg);
    const bool perf_ok = r.tpm() >= g.min_tpm &&
                         r.stats.mean_latency_ms() <= g.max_mean_latency_ms &&
                         r.stats.abort_rate_pct() <= g.max_abort_pct;
    const bool ok = perf_ok && r.safety.ok;
    all_ok = all_ok && ok;
    t.row({g.name, util::fmt(r.tpm(), 0),
           util::fmt(r.stats.mean_latency_ms(), 1),
           util::fmt(r.stats.abort_rate_pct(), 2),
           r.safety.ok ? "ok" : "VIOLATED", ok ? "PASS" : "FAIL"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nregression suite: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
