// Table 1 (§5.2): abort rates (%) per transaction class for five system
// configurations — 500 clients (1 site × 1 CPU), 1000 clients (1 site ×
// 3 CPU and 3 sites × 1 CPU), 1500 clients (1 site × 6 CPU and 6 sites ×
// 1 CPU).
#include <cstdio>

#include "common.hpp"
#include "tpcc/profile.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  struct column {
    const char* label;
    unsigned clients, sites, cpus;
  };
  const std::vector<column> columns = {
      {"500cl 1sx1c", 500, 1, 1},  {"1000cl 1sx3c", 1000, 1, 3},
      {"1000cl 3sx1c", 1000, 3, 1}, {"1500cl 1sx6c", 1500, 1, 6},
      {"1500cl 6sx1c", 1500, 6, 1},
  };

  std::vector<core::experiment_result> results;
  for (const column& col : columns) {
    auto cfg = bench::paper_config();
    bench::apply_common_flags(flags, cfg);
    cfg.clients = col.clients;
    cfg.sites = col.sites;
    cfg.cpus_per_site = col.cpus;
    results.push_back(bench::run_point(cfg, col.label));
  }

  // Paper row order.
  const std::vector<db::txn_class> row_order = {
      tpcc::c_delivery,          tpcc::c_neworder,
      tpcc::c_payment_long,      tpcc::c_payment_short,
      tpcc::c_orderstatus_long,  tpcc::c_orderstatus_short,
      tpcc::c_stocklevel,
  };

  util::text_table t;
  std::vector<std::string> header{"Transaction"};
  for (const column& col : columns) header.push_back(col.label);
  t.header(header);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(header);
  for (db::txn_class cls : row_order) {
    std::vector<std::string> row{tpcc::class_name(cls)};
    for (const auto& r : results)
      row.push_back(util::fmt(r.stats.of(cls).abort_rate_pct(), 2));
    t.row(row);
    rows.push_back(row);
  }
  std::vector<std::string> all_row{"All"};
  for (const auto& r : results)
    all_row.push_back(util::fmt(r.stats.abort_rate_pct(), 2));
  t.row(all_row);
  rows.push_back(all_row);

  std::puts("=== Table 1: abort rates (%) ===");
  bench::emit(t, flags.get_string("csv"), rows);
  std::puts(
      "\nPaper shapes: payment dominates and grows with replication "
      "degree; long > short;\norderstatus(short) and stocklevel are 0.00; "
      "neworder stays ~1.5%; replication\nimpacts mainly payment (the "
      "warehouse hotspot, §5.2).");
  return 0;
}
