// Ablation: the local read-only fast path (src/read/) vs the certified
// baseline, on the YCSB read-mostly mixes. Three modes per mix:
//
//   off        — the paper's §5.1 termination: read-only transactions
//                certify locally against the replica's own index (no
//                broadcast, but every read pays certification probes and
//                can certification-abort);
//   certified  — the all-certified baseline: read-only transactions ship
//                an empty-write-set payload through the total order and
//                certify at the delivery point (what a protocol without
//                local reads does — one broadcast per read);
//   fast       — epoch-lease snapshot reads: served locally AT the
//                uniform-delivered watermark, zero broadcasts and zero
//                certification probes, falling back to the certified path
//                when the lease is stale.
//
// Reported per point: committed throughput, abort rate, read-only
// broadcasts (counter-verified zero for fast/off), fast-path hit rate,
// and the read_snapshot monitor verdict (every fast read cross-checked
// against the reference agreed order).
//
//   $ ./bench_ablation_read_path [--clients N] [--txns N] [--csv out.csv]
//                                [--json out.json] [--smoke]
//
// --json writes the machine-readable baseline (bench/BENCH_reads.json);
// --smoke runs the quick matrix and exits nonzero on a monitor violation,
// a read-only broadcast on the fast path at YCSB-C, or an idle fast path
// (CI wiring).
#include <cstdio>

#include "common.hpp"
#include "workload/kv.hpp"

using namespace dbsm;

namespace {

struct point_result {
  std::string mix;
  std::string mode;
  core::experiment_result res;
  std::uint64_t fast = 0;
  std::uint64_t fallback = 0;
  std::uint64_t ro_bcast = 0;
  std::uint64_t revocations = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "360", "KV clients across 3 sites (enough "
                                  "load that the broadcast path, not "
                                  "think time, bounds throughput)");
  flags.declare("keys", "20000", "keyspace size");
  flags.declare("json", "", "optional JSON baseline output path");
  flags.declare("smoke", "false",
                "CI mode: quick matrix, nonzero exit on monitor "
                "violation or fast-path broadcast");
  if (!flags.parse(argc, argv)) return 1;
  const bool smoke = flags.get_bool("smoke");

  const struct { const char* name; kv::mix preset; } mixes[] = {
      {"b", kv::mix::ycsb_b},
      {"c", kv::mix::ycsb_c},
  };
  const read::mode modes[] = {read::mode::off, read::mode::certified,
                              read::mode::fast};

  std::vector<point_result> points;
  for (const auto& m : mixes) {
    for (const read::mode mode : modes) {
      core::experiment_config cfg = bench::paper_config();
      cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
      bench::apply_common_flags(flags, cfg);
      if (!flags.is_set("txns"))
        cfg.target_responses = smoke || flags.get_bool("quick") ? 800 : 2400;
      kv::kv_config k;
      k.keys = static_cast<std::uint32_t>(flags.get_int("keys"));
      k.preset = m.preset;
      k.think_time = util::exponential_dist(0.5);
      cfg.workload = kv::factory(k);
      cfg.replica_cfg.read.path = mode;

      point_result p;
      p.mix = m.name;
      p.mode = read::mode_name(mode);
      p.res = bench::run_point(cfg, std::string("read path ycsb-") +
                                        m.name + " mode=" + p.mode);
      for (const core::site_report& sr : p.res.sites) {
        p.fast += sr.fast_path_reads;
        p.fallback += sr.fallback_reads;
        p.ro_bcast += sr.ro_broadcasts;
        p.revocations += sr.lease_revocations;
      }
      points.push_back(std::move(p));
    }
  }

  util::text_table t;
  t.header({"Mix", "Mode", "tpm", "Abort %", "RO bcast", "Fast reads",
            "Fallback", "Hit %", "Checks"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"mix", "mode", "tpm", "abort_pct", "ro_broadcasts",
                      "fast_reads", "fallback_reads", "hit_pct",
                      "checks_ok"});
  std::string json = "{\n  \"benchmark\": \"read_path_ablation\",\n"
                     "  \"points\": [\n";
  bool failed = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const point_result& p = points[i];
    const std::uint64_t served = p.fast + p.fallback;
    const double hit =
        served == 0 ? 0.0
                    : 100.0 * static_cast<double>(p.fast) /
                          static_cast<double>(served);
    if (!p.res.checks.ok || !p.res.safety.ok) {
      std::fprintf(stderr, "[read-path] FAIL %s/%s: %s\n", p.mix.c_str(),
                   p.mode.c_str(), p.res.checks.summary().c_str());
      failed = true;
    }
    // The whole point of the fast path: a healthy YCSB-C run never
    // broadcasts — counter-verified, not assumed.
    if (p.mode == std::string("fast")) {
      if (p.mix == "c" && p.ro_bcast != 0) {
        std::fprintf(stderr,
                     "[read-path] FAIL: fast mode at ycsb-c issued %llu "
                     "read-only broadcasts (expected 0)\n",
                     static_cast<unsigned long long>(p.ro_bcast));
        failed = true;
      }
      if (p.fast == 0) {
        std::fprintf(stderr, "[read-path] FAIL: fast path at ycsb-%s "
                             "served zero reads\n", p.mix.c_str());
        failed = true;
      }
    }
    t.row({p.mix, p.mode, util::fmt(p.res.tpm(), 0),
           util::fmt(p.res.stats.abort_rate_pct(), 2), util::fmt(p.ro_bcast),
           util::fmt(p.fast), util::fmt(p.fallback), util::fmt(hit, 1),
           p.res.checks.ok ? "ok" : "VIOLATION"});
    csv_rows.push_back({p.mix, p.mode, util::fmt(p.res.tpm(), 0),
                        util::fmt(p.res.stats.abort_rate_pct(), 2),
                        util::fmt(p.ro_bcast), util::fmt(p.fast),
                        util::fmt(p.fallback), util::fmt(hit, 1),
                        p.res.checks.ok ? "1" : "0"});
    json += "    {\"mix\": \"" + p.mix + "\", \"mode\": \"" + p.mode +
            "\", \"tpm\": " + util::fmt(p.res.tpm(), 0) +
            ", \"abort_pct\": " + util::fmt(p.res.stats.abort_rate_pct(), 2) +
            ", \"ro_broadcasts\": " + util::fmt(p.ro_bcast) +
            ", \"fast_reads\": " + util::fmt(p.fast) +
            ", \"fallback_reads\": " + util::fmt(p.fallback) +
            ", \"hit_pct\": " + util::fmt(hit, 1) +
            ", \"lease_revocations\": " + util::fmt(p.revocations) +
            ", \"checks_ok\": " + (p.res.checks.ok ? "true" : "false") +
            "}" + (i + 1 < points.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";

  bench::emit(t, flags.get_string("csv"), csv_rows);
  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::fprintf(stderr, "[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "[json] cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return failed ? 1 : 0;
}
