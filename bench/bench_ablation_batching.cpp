// Ablation: batch atomic broadcast + the two-stage commit pipeline
// (gcs batch_max > 1) vs the serial per-payload hot path. One leg per
// batch size on an update-heavy KV mix (YCSB-A), all legs under the
// online monitors and the off-line §5.3 safety check:
//
//   batch_max = 1   — today's behavior: one assignment record per
//                     payload, per-payload delivery, serial
//                     certify + install at the delivery point;
//   batch_max = B   — the sequencer mints one assignment record per
//                     batch (closed by size B or the delay threshold),
//                     delivery hands contiguous runs, stage 1 certifies
//                     the run (codec + cert fixed costs amortized,
//                     stability ticks deduplicated) while installs
//                     drain through the bounded pipeline.
//
// Decisions must be batch-size-invariant; only charged CPU (and so
// throughput) may move. Reported per leg: committed throughput, abort
// rate, cert-latency p95, view changes, and the monitor verdict. The
// amortization term is additionally differenced at the component level:
// the same payload stream is certified with the serial and the batched
// cost pattern, decision-for-decision, every run.
//
//   $ ./bench_ablation_batching [--clients N] [--txns N] [--csv out.csv]
//                               [--json out.json] [--smoke]
//
// --json writes the machine-readable baseline (bench/BENCH_batching.json);
// --smoke runs the quick {1, 32} sweep and exits nonzero on a decision
// divergence (component differential, or a batched rerun whose commit
// logs are not byte-identical), a monitor violation, or a batched leg
// slower than the batch_max = 1 leg (CI wiring).
#include <cstdio>

#include "cert/certifier.hpp"
#include "cert/sharded_certifier.hpp"
#include "common.hpp"
#include "db/item.hpp"
#include "util/rng.hpp"
#include "workload/kv.hpp"

using namespace dbsm;

namespace {

struct point_result {
  std::size_t batch_max = 1;
  core::experiment_result res;
  std::uint64_t runs = 0;
  std::uint64_t run_payloads = 0;
  std::uint64_t pipeline_hw = 0;
  double mean_run() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(run_payloads) /
                           static_cast<double>(runs);
  }
};

/// Component-level divergence probe: one randomized update/read-only
/// stream through the indexed oracle and a sharded instance charged with
/// the batched amortization pattern (first certification of each
/// simulated batch pays cost_fixed, the rest cost_batch_fixed). Any
/// decision or counter mismatch is exactly the divergence the batched
/// hot path would ship, without needing an end-to-end log comparison
/// (begin positions are timing-dependent across batch sizes).
bool amortization_decisions_diverge(std::size_t batch) {
  using db::item_id;
  cert::cert_config cfg;
  cfg.history_window = 4096;
  cert::certifier oracle(cfg);
  cert::sharded_certifier amortized(cfg);
  util::rng g(607 + static_cast<std::uint64_t>(batch));
  std::size_t in_batch = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t pos = oracle.position();
    const std::uint64_t lo = pos > 90 ? pos - 90 : 0;
    const auto begin = static_cast<std::uint64_t>(
        g.uniform_int(static_cast<std::int64_t>(lo),
                      static_cast<std::int64_t>(pos)));
    std::vector<item_id> rs, ws;
    const int nr = static_cast<int>(g.uniform_int(0, 5));
    for (int k = 0; k < nr; ++k) {
      const auto n = static_cast<std::uint64_t>(g.uniform_int(0, 500));
      rs.push_back(g.bernoulli(0.15) ? ((n >> 4) << 1 | 1) : (n << 1));
    }
    cert::normalize(rs);
    if (g.bernoulli(0.2)) {
      if (amortized.certify_read_only(begin, rs) !=
          oracle.certify_read_only(begin, rs))
        return true;
      continue;
    }
    const int nw = static_cast<int>(g.uniform_int(1, 4));
    for (int k = 0; k < nw; ++k) {
      const auto n = static_cast<std::uint64_t>(g.uniform_int(0, 500));
      ws.push_back(n << 1);
      if (g.bernoulli(0.3)) ws.push_back((n >> 4) << 1 | 1);
    }
    cert::normalize(ws);
    const bool amortized_fixed = in_batch != 0;
    in_batch = (in_batch + 1) % batch;
    if (amortized.certify_update(begin, rs, ws, amortized_fixed) !=
            oracle.certify_update(begin, rs, ws) ||
        amortized.position() != oracle.position() ||
        amortized.commits() != oracle.commits() ||
        amortized.aborts() != oracle.aborts())
      return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "1500", "KV clients across 3 sites (enough "
                                  "load that batches actually fill)");
  flags.declare("keys", "20000", "keyspace size");
  flags.declare("batch-delay-ms", "5",
                "batch close delay for the batched legs (the serial leg "
                "keeps the default); long enough that batches fill at "
                "the measured arrival rate instead of closing at size "
                "1-2 on the 500us dissemination default");
  flags.declare("json", "", "optional JSON baseline output path");
  flags.declare("smoke", "false",
                "CI mode: quick {1, 32} sweep + batched rerun, nonzero "
                "exit on decision divergence, monitor violation, or a "
                "batched leg slower than batch_max = 1");
  if (!flags.parse(argc, argv)) return 1;
  const bool smoke = flags.get_bool("smoke");
  const bool quick = smoke || flags.get_bool("quick");

  const std::vector<std::size_t> batches =
      smoke ? std::vector<std::size_t>{1, 32}
            : std::vector<std::size_t>{1, 4, 16, 32, 128, 256};

  bool failed = false;
  std::vector<point_result> points;
  for (const std::size_t b : batches) {
    core::experiment_config cfg = bench::paper_config();
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    bench::apply_common_flags(flags, cfg);
    // Several completed transactions per client, or the measurement is
    // all ramp-up transient (clients outnumbering responses).
    if (!flags.is_set("txns"))
      cfg.target_responses = quick ? 6 * cfg.clients : 20 * cfg.clients;
    // The protocol-bound regime, where per-delivery fixed costs are a
    // real fraction of CPU: light execution (20us/op instead of the
    // calibrated 0.2ms PostgreSQL ops) and moderate skew (theta 0.6 —
    // at the 0.99 default most updates die on local lock conflicts and
    // never reach the broadcast path the ablation measures).
    kv::kv_config k;
    k.keys = static_cast<std::uint32_t>(flags.get_int("keys"));
    k.preset = kv::mix::ycsb_a;
    k.zipf_theta = 0.5;
    k.value_bytes = 32;
    k.cpu_per_op = util::constant_dist(20e-6);
    k.think_time = util::exponential_dist(0.1);
    cfg.workload = kv::factory(k);
    // Fast-engine profile: the paper's PIII calibration spends ~2 ms of
    // CPU per commit and ~1.7 ms of RAID latency per sector, burying the
    // per-delivery protocol costs this ablation isolates. Model a faster
    // engine (write-cached storage, 10x lighter commit processing) so
    // the termination path is the binding resource.
    cfg.replica_cfg.server.commit_cpu = microseconds(200);
    cfg.replica_cfg.server.remote_apply_cpu = microseconds(100);
    cfg.replica_cfg.server.storage.request_latency = microseconds(170);
    cfg.gcs.batch_max = b;
    if (b > 1)
      cfg.gcs.batch_delay =
          milliseconds(flags.get_int("batch-delay-ms"));

    point_result p;
    p.batch_max = b;
    p.res = bench::run_point(cfg, "batching batch_max=" + util::fmt(b));
    for (const core::site_report& sr : p.res.sites) {
      p.runs += sr.delivery_runs;
      p.run_payloads += sr.run_payloads;
      p.pipeline_hw = std::max(p.pipeline_hw, sr.pipeline_high_water);
    }
    if (b > 1 && amortization_decisions_diverge(b)) {
      std::fprintf(stderr,
                   "[batching] FAIL: amortized certification diverged "
                   "from the oracle at batch_max=%zu\n", b);
      failed = true;
    }
    if (smoke && b > 1) {
      // Same config, fresh cluster: the batched path must be exactly
      // reproducible — any nondeterminism in run hand-off or pipeline
      // drain order shows up as diverging commit logs.
      core::experiment_result rerun =
          bench::run_point(cfg, "batching rerun batch_max=" + util::fmt(b));
      if (rerun.commit_logs != p.res.commit_logs) {
        std::fprintf(stderr,
                     "[batching] FAIL: batched run not deterministic at "
                     "batch_max=%zu (rerun commit logs differ)\n", b);
        failed = true;
      }
    }
    points.push_back(std::move(p));
  }

  util::text_table t;
  t.header({"Batch", "tpm", "Abort %", "Cert p95 ms", "CPU %", "Disk %",
            "Mean run", "Pipe HW", "Views", "Safety", "Checks"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"batch_max", "tpm", "abort_pct", "cert_p95_ms",
                      "cpu_pct", "disk_pct", "mean_run_len",
                      "pipeline_high_water", "view_changes", "safety_ok",
                      "checks_ok"});
  std::string json = "{\n  \"benchmark\": \"batching_ablation\",\n"
                     "  \"mix\": \"ycsb_a\",\n  \"points\": [\n";
  const double serial_tpm = points.empty() ? 0.0 : points[0].res.tpm();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const point_result& p = points[i];
    const double p95 = p.res.cert_latency_ms.empty()
                           ? 0.0
                           : p.res.cert_latency_ms.quantile(0.95);
    if (!p.res.checks.ok || !p.res.safety.ok) {
      std::fprintf(stderr, "[batching] FAIL batch_max=%zu: %s\n",
                   p.batch_max, p.res.checks.summary().c_str());
      failed = true;
    }
    // The point of batching: the amortized legs must not be slower than
    // the serial leg (the simulation is deterministic, so this is a real
    // regression signal, not noise).
    if (p.batch_max >= 32 && p.res.tpm() < serial_tpm) {
      std::fprintf(stderr,
                   "[batching] FAIL: batch_max=%zu tpm %.0f below the "
                   "batch_max=1 leg (%.0f)\n",
                   p.batch_max, p.res.tpm(), serial_tpm);
      failed = true;
    }
    t.row({util::fmt(p.batch_max), util::fmt(p.res.tpm(), 0),
           util::fmt(p.res.stats.abort_rate_pct(), 2), util::fmt(p95, 2),
           util::fmt(100.0 * p.res.cpu_utilization, 1),
           util::fmt(100.0 * p.res.disk_utilization, 1),
           util::fmt(p.mean_run(), 1), util::fmt(p.pipeline_hw),
           util::fmt(p.res.view_changes),
           p.res.safety.ok ? "ok" : "VIOLATION",
           p.res.checks.ok ? "ok" : "VIOLATION"});
    csv_rows.push_back({util::fmt(p.batch_max), util::fmt(p.res.tpm(), 0),
                        util::fmt(p.res.stats.abort_rate_pct(), 2),
                        util::fmt(p95, 2),
                        util::fmt(100.0 * p.res.cpu_utilization, 1),
                        util::fmt(100.0 * p.res.disk_utilization, 1),
                        util::fmt(p.mean_run(), 1),
                        util::fmt(p.pipeline_hw),
                        util::fmt(p.res.view_changes),
                        p.res.safety.ok ? "1" : "0",
                        p.res.checks.ok ? "1" : "0"});
    json += "    {\"batch_max\": " + util::fmt(p.batch_max) +
            ", \"tpm\": " + util::fmt(p.res.tpm(), 0) +
            ", \"abort_pct\": " + util::fmt(p.res.stats.abort_rate_pct(), 2) +
            ", \"cert_p95_ms\": " + util::fmt(p95, 2) +
            ", \"cpu_pct\": " + util::fmt(100.0 * p.res.cpu_utilization, 1) +
            ", \"disk_pct\": " +
            util::fmt(100.0 * p.res.disk_utilization, 1) +
            ", \"mean_run_len\": " + util::fmt(p.mean_run(), 1) +
            ", \"pipeline_high_water\": " + util::fmt(p.pipeline_hw) +
            ", \"view_changes\": " + util::fmt(p.res.view_changes) +
            ", \"safety_ok\": " + (p.res.safety.ok ? "true" : "false") +
            ", \"checks_ok\": " + (p.res.checks.ok ? "true" : "false") +
            "}" + (i + 1 < points.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";

  bench::emit(t, flags.get_string("csv"), csv_rows);
  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::fprintf(stderr, "[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "[json] cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return failed ? 1 : 0;
}
