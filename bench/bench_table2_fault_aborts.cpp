// Table 2 (§5.3): abort rates (%) per transaction class with 3 sites and
// 1000 clients — no losses vs 5% random loss vs 5% bursty loss.
//
// --json <path> additionally records the run as a machine-readable
// baseline (bench/BENCH_faults.json in the repo).
#include <cstdio>

#include "common.hpp"
#include "tpcc/profile.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("json", "", "write a JSON baseline to this path");
  if (!flags.parse(argc, argv)) return 1;

  struct scenario {
    const char* label;
    fault::plan plan;
  };
  std::vector<scenario> scenarios;
  scenarios.push_back({"No Losses", {}});
  {
    fault::plan p;
    p.random_loss = 0.05;
    scenarios.push_back({"Random - 5%", p});
  }
  {
    fault::plan p;
    p.bursty_loss = 0.05;
    p.burst_len = 5;
    scenarios.push_back({"Bursty - 5%", p});
  }

  std::vector<core::experiment_result> results;
  for (const auto& s : scenarios) {
    auto cfg = bench::paper_config();
    bench::apply_common_flags(flags, cfg);
    cfg.sites = 3;
    cfg.cpus_per_site = 1;
    cfg.clients = 1000;
    cfg.faults = fault::from_plan(s.plan, s.label);
    results.push_back(bench::run_point(cfg, s.label));
  }

  const std::vector<db::txn_class> row_order = {
      tpcc::c_delivery,          tpcc::c_neworder,
      tpcc::c_payment_long,      tpcc::c_payment_short,
      tpcc::c_orderstatus_long,  tpcc::c_orderstatus_short,
      tpcc::c_stocklevel,
  };

  util::text_table t;
  std::vector<std::string> header{"Transaction"};
  for (const auto& s : scenarios) header.push_back(s.label);
  t.header(header);
  std::vector<std::vector<std::string>> rows;
  rows.push_back(header);
  for (db::txn_class cls : row_order) {
    std::vector<std::string> row{tpcc::class_name(cls)};
    for (const auto& r : results)
      row.push_back(util::fmt(r.stats.of(cls).abort_rate_pct(), 2));
    t.row(row);
    rows.push_back(row);
  }
  std::vector<std::string> all_row{"All"};
  for (const auto& r : results)
    all_row.push_back(util::fmt(r.stats.abort_rate_pct(), 2));
  t.row(all_row);
  rows.push_back(all_row);

  std::puts("=== Table 2: abort rates with 3 sites / 1000 clients (%) ===");
  bench::emit(t, flags.get_string("csv"), rows);

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"table2_fault_aborts\",\n");
    std::fprintf(f, "  \"config\": {\"sites\": 3, \"clients\": 1000, "
                    "\"txns\": %llu, \"seed\": %llu},\n",
                 static_cast<unsigned long long>(
                     results[0].responses),
                 static_cast<unsigned long long>(flags.get_u64("seed")));
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t k = 0; k < results.size(); ++k) {
      const auto& r = results[k];
      std::fprintf(
          f,
          "    {\"label\": \"%s\", \"committed\": %llu, \"abort_pct\": "
          "%.2f, \"tpm\": %.0f, \"p99_latency_ms\": %.1f, "
          "\"retransmissions\": %llu, \"view_changes\": %llu, "
          "\"safety_ok\": %s}%s\n",
          scenarios[k].label,
          static_cast<unsigned long long>(r.stats.total_committed()),
          r.stats.abort_rate_pct(), r.tpm(),
          r.stats.pooled_latency_ms().quantile(0.99),
          static_cast<unsigned long long>(r.retransmissions),
          static_cast<unsigned long long>(r.view_changes),
          r.safety.ok ? "true" : "false",
          k + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("JSON baseline written to %s\n", json_path.c_str());
  }
  for (std::size_t k = 0; k < results.size(); ++k) {
    if (!results[k].safety.ok) {
      std::printf("SAFETY VIOLATION in %s: %s\n", scenarios[k].label,
                  results[k].safety.detail.c_str());
      return 1;
    }
  }
  std::puts(
      "\nPaper shapes: random loss raises abort rates across update "
      "classes well above\nbursty loss of the same average rate "
      "(certification delays extend conflict\nwindows); all operational "
      "sites still commit identical sequences.");
  return 0;
}
