// Ablation: sharded parallel certification — shards × certify_threads ×
// set-size sweep over always-committing certifications at a warm history
// window (the delivery critical path of every experiment).
//
// Two series per point:
//   * real ns/certify — wall-clock over the actual probe/install work,
//     forked across the persistent pool (thread scaling here needs real
//     cores; the JSON baseline records the generating host's core count);
//   * modeled µs/certify — the deterministic cost the simulator charges
//     (cert_config's fork-join critical-path model), which is what
//     bench_fig5_performance and friends use via --certify-threads and is
//     machine-independent.
//
//   $ ./bench_ablation_cert_shards [--iters N] [--window N]
//                                  [--csv out.csv] [--json out.json]
//   $ ./bench_ablation_cert_shards --smoke   # CI: exercises the parallel
//     path and differentially re-checks it against cert::certifier,
//     exiting non-zero on any decision divergence.
//
// --json writes the machine-readable baseline (bench/BENCH_cert_shards.json).
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "cert/certifier.hpp"
#include "cert/sharded_certifier.hpp"
#include "common.hpp"
#include "util/rng.hpp"

using namespace dbsm;

namespace {

struct sweep_point {
  std::size_t set_size;
  std::size_t shards;
  unsigned threads;
  double real_ns = 0;     // wall-clock per certify_update
  double modeled_us = 0;  // simulator charge per certify_update
};

constexpr db::item_id tup(std::uint64_t n) { return n << 1; }
constexpr db::item_id gran(std::uint64_t n) { return (n << 1) | 1; }

/// One grid point: prefill the window with committed sets, then time
/// `iters` always-committing certifications of a `set_size`-element write
/// set plus an escalated read set of set_size / 2 untouched granules.
void run_point(sweep_point& p, std::size_t window, std::size_t iters) {
  cert::cert_config cfg;
  cfg.history_window = window;
  cfg.shards = p.shards;
  cfg.certify_threads = p.threads;
  cert::sharded_certifier c(cfg);
  util::rng g(1);

  std::vector<db::item_id> ws;
  while (c.history_size() < window) {
    ws.clear();
    for (std::size_t k = 0; k < p.set_size; ++k)
      ws.push_back((db::item_id(1) << 40) |
                   tup(static_cast<db::item_id>(
                       g.uniform_int(0, 1 << 26))));
    cert::normalize(ws);
    c.certify_update(c.position(), {}, ws);
  }

  std::vector<db::item_id> rs(p.set_size / 2);
  for (std::size_t k = 0; k < rs.size(); ++k)
    rs[k] = gran((db::item_id(1) << 50) + k);  // never-written granules
  ws.resize(p.set_size);
  std::uint64_t fresh = 1;
  sim_duration modeled = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    for (std::size_t k = 0; k < ws.size(); ++k)
      ws[k] = tup(fresh * 2 * p.set_size + k);  // fresh: always commits
    ++fresh;
    c.certify_update(c.oldest_retained() - 1, rs, ws);
    modeled += c.last_cost();
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (c.commits() != c.position()) {
    std::fprintf(stderr, "sweep workload was expected to always commit\n");
    std::exit(1);
  }
  p.real_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
              .count()) /
      static_cast<double>(iters);
  p.modeled_us = to_micros(modeled) / static_cast<double>(iters);
}

/// Differential re-check for the CI smoke: sharded decisions must match
/// cert::certifier over a randomized conflict-heavy stream.
bool smoke_differential(std::size_t shards, unsigned threads) {
  cert::cert_config cfg;
  cfg.history_window = 128;
  cert::certifier oracle(cfg);
  cfg.shards = shards;
  cfg.certify_threads = threads;
  cert::sharded_certifier sharded(cfg);
  util::rng g(7);
  for (int i = 0; i < 2000; ++i) {
    std::vector<db::item_id> rs, ws;
    const auto n = static_cast<std::uint64_t>(g.uniform_int(0, 600));
    if (g.bernoulli(0.4)) rs.push_back(gran(n >> 3));
    ws.push_back(tup(n));
    if (g.bernoulli(0.5)) ws.push_back(gran(n >> 3));
    cert::normalize(rs);
    cert::normalize(ws);
    const std::uint64_t pos = oracle.position();
    const std::uint64_t begin =
        pos - std::min<std::uint64_t>(
                  pos, static_cast<std::uint64_t>(g.uniform_int(0, 160)));
    if (sharded.certify_update(begin, rs, ws) !=
        oracle.certify_update(begin, rs, ws)) {
      std::fprintf(stderr,
                   "DIVERGENCE at step %d (shards %zu, threads %u)\n", i,
                   shards, threads);
      return false;
    }
  }
  return oracle.commits() == sharded.commits() &&
         oracle.aborts() == sharded.aborts();
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("iters", "0", "certifications per point (0 = auto)");
  flags.declare("window", "1000", "warm history window (committed sets)");
  flags.declare("smoke", "false",
                "CI mode: small sweep + differential correctness check");
  flags.declare("csv", "", "optional CSV output path");
  flags.declare("json", "", "optional JSON baseline output path");
  if (!flags.parse(argc, argv)) return 1;

  const bool smoke = flags.get_bool("smoke");
  if (smoke) {
    for (const auto& [s, t] : std::vector<std::pair<std::size_t, unsigned>>{
             {1, 1}, {2, 1}, {8, 4}}) {
      if (!smoke_differential(s, t)) return 1;
    }
    std::puts("shard differential smoke: PASS");
  }

  const std::size_t window = flags.get_u64("window");
  const std::vector<std::size_t> set_sizes =
      smoke ? std::vector<std::size_t>{256}
            : std::vector<std::size_t>{16, 64, 256, 1024};
  const std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 4}
            : std::vector<unsigned>{1, 2, 4};

  std::vector<sweep_point> points;
  for (const std::size_t n : set_sizes)
    for (const std::size_t s : shard_counts)
      for (const unsigned t : thread_counts) {
        if (t > 1 && s == 1) continue;  // fork width is min(threads, shards)
        points.push_back(sweep_point{n, s, t});
      }

  util::text_table table;
  table.header({"Set size", "Shards", "Threads", "Real ns/certify",
                "Modeled us/certify", "Modeled speedup"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"set_size", "shards", "threads", "real_ns",
                      "modeled_us", "modeled_speedup"});

  for (sweep_point& p : points) {
    const std::size_t iters =
        flags.get_u64("iters") != 0
            ? flags.get_u64("iters")
            : std::max<std::size_t>(
                  smoke ? 50 : 400,
                  (smoke ? 40000 : 800000) / p.set_size);
    run_point(p, window, iters);
    std::fprintf(stderr, "[point] set %zu shards %zu threads %u done\n",
                 p.set_size, p.shards, p.threads);
  }

  // Modeled speedup is relative to the serial model at the same set size
  // (the 1-shard / 1-thread row), the quantity the figure benches model.
  auto serial_modeled = [&](std::size_t set_size) {
    for (const sweep_point& p : points)
      if (p.set_size == set_size && p.shards == 1 && p.threads == 1)
        return p.modeled_us;
    return 0.0;
  };

  std::string json =
      "{\n  \"benchmark\": \"cert_shards_sweep\",\n"
      "  \"window\": " + util::fmt(static_cast<double>(window), 0) +
      ",\n  \"host_cpus\": " +
      util::fmt(static_cast<double>(std::thread::hardware_concurrency()),
                0) +
      ",\n  \"note\": \"modeled_us is the deterministic simulator charge "
      "(fork-join critical path); real_ns needs host cores to scale\",\n"
      "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const sweep_point& p = points[i];
    const double base = serial_modeled(p.set_size);
    const double speedup = p.modeled_us > 0 ? base / p.modeled_us : 0.0;
    table.row({util::fmt(p.set_size), util::fmt(p.shards),
               util::fmt(static_cast<std::size_t>(p.threads)), util::fmt(p.real_ns, 0),
               util::fmt(p.modeled_us, 2), util::fmt(speedup, 2)});
    csv_rows.push_back({util::fmt(p.set_size), util::fmt(p.shards),
                        util::fmt(static_cast<std::size_t>(p.threads)), util::fmt(p.real_ns, 0),
                        util::fmt(p.modeled_us, 2),
                        util::fmt(speedup, 2)});
    json += "    {\"set_size\": " + util::fmt(p.set_size) +
            ", \"shards\": " + util::fmt(p.shards) +
            ", \"threads\": " + util::fmt(static_cast<std::size_t>(p.threads)) +
            ", \"real_ns_per_certify\": " + util::fmt(p.real_ns, 0) +
            ", \"modeled_us_per_certify\": " + util::fmt(p.modeled_us, 2) +
            ", \"modeled_speedup\": " + util::fmt(speedup, 2) + "}" +
            (i + 1 < points.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";

  bench::emit(table, flags.get_string("csv"), csv_rows);
  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::fprintf(stderr, "[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "[json] cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
