// Ablation (§3.3 design choice): read-set escalation. With escalation on,
// unindexed scans travel as one granule id and certify against concurrent
// writes; with it off, the scanned tuples travel individually — read sets
// grow (multicast cost) and the scan-conflict channel disappears
// (serializability of scans is lost; the paper's engine escalates instead
// of multicasting huge read sets).
#include <cstdio>

#include "common.hpp"
#include "tpcc/profile.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "1000", "client count");
  if (!flags.parse(argc, argv)) return 1;

  util::text_table t;
  t.header({"Variant", "tpm", "Abort(%)", "os-long abort(%)",
            "pay-long abort(%)", "Net KB/s"});
  std::vector<std::vector<std::string>> rows;
  for (const bool escalate : {true, false}) {
    auto cfg = bench::paper_config();
    bench::apply_common_flags(flags, cfg);
    cfg.sites = 3;
    cfg.cpus_per_site = 1;
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    cfg.profile.escalate_scans = escalate;
    const char* label = escalate ? "escalation on (paper)"
                                 : "escalation off (tuple reads)";
    const auto r = bench::run_point(cfg, label);
    std::vector<std::string> row{
        label,
        util::fmt(r.tpm(), 0),
        util::fmt(r.stats.abort_rate_pct(), 2),
        util::fmt(r.stats.of(tpcc::c_orderstatus_long).abort_rate_pct(), 2),
        util::fmt(r.stats.of(tpcc::c_payment_long).abort_rate_pct(), 2),
        util::fmt(r.network_kbps, 0)};
    t.row(row);
    rows.push_back(row);
  }
  std::puts("=== Ablation: read-set escalation (3 sites) ===");
  bench::emit(t, flags.get_string("csv"), rows);
  std::puts(
      "\nExpected: without escalation, orderstatus(long) aborts collapse "
      "toward 0 (scan\nconflicts no longer detected) and network bytes "
      "rise (fat read sets on the wire).");
  return 0;
}
