// Figure 7 (§5.3): performance under fault injection — 3 sites, 750
// clients, comparing no faults, 5% random loss, and 5% bursty loss
// (average burst length 5):
//   (a) ECDF of transaction latency (log-scale x in the paper),
//   (b) ECDF of certification latency,
//   (c) CPU usage by protocol (real) jobs,
// plus the §5.3 analysis probes: fraction of deliveries delayed, NAKs,
// retransmissions, and sender-blocking episodes (the sequencer buffer
// exhaustion the paper diagnoses).
#include <cstdio>

#include "common.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "750", "client count (paper: 750)");
  flags.declare("ecdf-points", "15", "quantile points per ECDF series");
  if (!flags.parse(argc, argv)) return 1;

  struct scenario {
    const char* label;
    fault::plan plan;
  };
  std::vector<scenario> scenarios;
  scenarios.push_back({"No Faults", {}});
  {
    fault::plan p;
    p.random_loss = 0.05;
    scenarios.push_back({"Random Loss", p});
  }
  {
    fault::plan p;
    p.bursty_loss = 0.05;
    p.burst_len = 5;
    scenarios.push_back({"Bursty Loss", p});
  }

  std::vector<core::experiment_result> results;
  for (const auto& s : scenarios) {
    auto cfg = bench::paper_config();
    bench::apply_common_flags(flags, cfg);
    cfg.sites = 3;
    cfg.cpus_per_site = 1;
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    cfg.faults = fault::from_plan(s.plan, s.label);
    results.push_back(bench::run_point(cfg, s.label));
  }

  const auto n = static_cast<std::size_t>(flags.get_int("ecdf-points"));
  auto print_ecdf = [&](const char* title, auto pick) {
    util::text_table t;
    std::vector<std::string> header{"quantile"};
    for (const auto& s : scenarios) header.push_back(s.label);
    t.header(header);
    std::vector<std::vector<std::string>> rows;
    rows.push_back(header);
    for (std::size_t i = 0; i < n; ++i) {
      const double q = (static_cast<double>(i) + 0.5) / n;
      std::vector<std::string> row{util::fmt(q, 2)};
      for (std::size_t k = 0; k < results.size(); ++k)
        row.push_back(util::fmt(pick(results[k]).quantile(q), 1));
      t.row(row);
      rows.push_back(row);
    }
    std::printf("\n=== Figure 7: %s ECDF (value in ms at quantile) ===\n",
                title);
    const std::string csv = flags.get_string("csv");
    bench::emit(t, csv.empty() ? "" : csv + "." + title + ".csv", rows);
  };

  print_ecdf("transaction_latency",
             [](const core::experiment_result& r) {
               return r.stats.pooled_latency_ms();
             });
  print_ecdf("certification_latency",
             [](const core::experiment_result& r) {
               return r.cert_latency_ms;
             });

  // (c) CPU usage by protocol jobs, plus the §5.3 probes. "Delayed" =
  // certification latency beyond the fault-free envelope (its p95), the
  // paper's "delaying 30% to 40% of messages at the application level".
  const double delay_threshold_ms =
      std::max(results[0].cert_latency_ms.quantile(0.95), 1.0);
  {
    util::text_table t;
    t.header({"Run", "Proto CPU(%)", "Delayed(%)", "NAKs", "Retx",
              "Blocked(#)", "Blocked(ms)", "p99 lat(ms)"});
    std::vector<std::vector<std::string>> rows;
    for (std::size_t k = 0; k < results.size(); ++k) {
      const auto& r = results[k];
      const double delayed_pct =
          r.cert_latency_ms.empty()
              ? 0.0
              : 100.0 *
                    (1.0 - r.cert_latency_ms.ecdf_at(delay_threshold_ms));
      std::vector<std::string> row{
          scenarios[k].label,
          util::fmt(r.protocol_cpu_utilization * 100.0, 2),
          util::fmt(delayed_pct, 1),
          util::fmt(static_cast<std::int64_t>(r.naks_sent)),
          util::fmt(static_cast<std::int64_t>(r.retransmissions)),
          util::fmt(static_cast<std::int64_t>(r.blocked_episodes)),
          util::fmt(r.blocked_ms, 1),
          util::fmt(r.stats.pooled_latency_ms().quantile(0.99), 1)};
      t.row(row);
      rows.push_back(row);
    }
    std::printf(
        "\n=== Figure 7(c): protocol CPU usage and loss probes "
        "(delay threshold %.1f ms) ===\n",
        delay_threshold_ms);
    const std::string csv = flags.get_string("csv");
    bench::emit(t, csv.empty() ? "" : csv + ".cpu.csv", rows);
  }

  std::puts(
      "\nPaper shapes: random 5% loss hurts far more than bursty 5% — a "
      "long latency tail\n(~10x at the top percentiles) driven by "
      "certification delays (30-40% of messages\ndelayed), protocol CPU "
      "rising ~1.2% -> ~1.9%, caused by sender-buffer exhaustion\nat the "
      "sequencer awaiting stability garbage collection (§5.3).");
  return 0;
}
