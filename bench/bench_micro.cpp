// Microbenchmarks of the core primitives (google-benchmark): event queue,
// certification, marshaling, stability gossip merging, lock table, and
// the simulated LAN — the hot paths of every experiment.
#include <benchmark/benchmark.h>

#include "cert/certifier.hpp"
#include "cert/reference_certifier.hpp"
#include "cert/sharded_certifier.hpp"
#include "cert/txn_codec.hpp"
#include "db/lock_table.hpp"
#include "gcs/stability.hpp"
#include "net/lan.hpp"
#include "sim/simulator.hpp"
#include "tpcc/workload.hpp"
#include "workload/kv.hpp"

namespace dbsm {
namespace {

void BM_event_queue(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::simulator s;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_at(static_cast<sim_time>((i * 2654435761u) % 1000000),
                    [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_event_queue)->Arg(1000)->Arg(10000)->Arg(100000);

// ---- certification: indexed (last-writer probes) vs reference scan ----
//
// Both run the same steady-state workload: a full history window of
// committed 20-tuple write sets, then certifications whose snapshot is the
// oldest still-valid position — the worst case, where the scan certifier
// must traverse the entire window while the indexed one performs
// O(|read_set| + |write_set|) hash probes. Measured write sets draw fresh
// ids from a region disjoint from the prefill (and never repeat), so every
// certification COMMITS: the scan cannot early-exit on a conflict and both
// certifiers exercise the history-admission path each iteration.
template <typename Certifier>
void run_certify_bench(benchmark::State& state, cert::cert_config cfg,
                       std::size_t set_elems) {
  const std::size_t window = cfg.history_window;
  Certifier c(cfg);
  util::rng g(1);
  // Prefill: `window` committed write sets of `set_elems` random tuples,
  // tagged with bit 40 to keep them disjoint from measured ids.
  {
    std::vector<db::item_id> ws;
    while (c.history_size() < window) {
      ws.clear();
      for (std::size_t k = 0; k < set_elems; ++k)
        ws.push_back((db::item_id(1) << 40) |
                     (static_cast<db::item_id>(g.uniform_int(0, 1 << 26))
                      << 1));
      cert::normalize(ws);
      c.certify_update(c.position(), {}, ws);
    }
  }
  // Fixed tuple-level read set (point reads are snapshot-served and never
  // conflict) and a fresh ascending write set per iteration.
  std::vector<db::item_id> rs(set_elems / 2), ws(set_elems);
  for (std::size_t k = 0; k < rs.size(); ++k)
    rs[k] = static_cast<db::item_id>((1000 + k) << 1);
  std::uint64_t fresh = 1;
  for (auto _ : state) {
    for (std::size_t k = 0; k < ws.size(); ++k)
      ws[k] = static_cast<db::item_id>(
          (fresh * 2 * set_elems + k) << 1);
    ++fresh;
    // Oldest snapshot that escapes the conservative pre-window abort:
    // every retained committed write set is concurrent with it.
    benchmark::DoNotOptimize(
        c.certify_update(c.oldest_retained() - 1, rs, ws));
  }
  if (c.commits() != c.position())
    state.SkipWithError("benchmark workload was expected to always commit");
  state.SetItemsProcessed(state.iterations());
}

template <typename Certifier>
void run_certify_window_bench(benchmark::State& state) {
  cert::cert_config cfg;
  cfg.history_window = static_cast<std::size_t>(state.range(0));
  run_certify_bench<Certifier>(state, cfg, 20);
}

void BM_certify_indexed(benchmark::State& state) {
  run_certify_window_bench<cert::certifier>(state);
}
BENCHMARK(BM_certify_indexed)->Arg(1000)->Arg(10000)->Arg(50000);

// Sharded parallel certification on large (256-element) write sets:
// Args are {shards, certify_threads}. Real thread scaling needs real
// cores; the modeled cost (what the figure benches charge) follows the
// fork-join critical path either way.
void BM_certify_sharded(benchmark::State& state) {
  cert::cert_config cfg;
  cfg.history_window = 2000;
  cfg.shards = static_cast<std::size_t>(state.range(0));
  cfg.certify_threads = static_cast<unsigned>(state.range(1));
  run_certify_bench<cert::sharded_certifier>(state, cfg, 256);
}
BENCHMARK(BM_certify_sharded)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Unit(benchmark::kMicrosecond);

void BM_certify_scan(benchmark::State& state) {
  run_certify_window_bench<cert::reference_certifier>(state);
}
BENCHMARK(BM_certify_scan)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMicrosecond);

void BM_txn_codec_round_trip(benchmark::State& state) {
  cert::txn_payload p;
  p.id = 42;
  p.begin_pos = 7;
  util::rng g(2);
  for (int k = 0; k < 30; ++k)
    p.read_set.push_back(static_cast<db::item_id>(g.next_u64()));
  for (int k = 0; k < 25; ++k)
    p.write_set.push_back(static_cast<db::item_id>(g.next_u64()));
  cert::normalize(p.read_set);
  cert::normalize(p.write_set);
  p.update_bytes = 2000;
  for (auto _ : state) {
    auto raw = cert::encode_txn(p);
    auto q = cert::decode_txn(raw);
    benchmark::DoNotOptimize(q.write_set.size());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cert::encoded_size(p)));
}
BENCHMARK(BM_txn_codec_round_trip);

void BM_stability_merge(benchmark::State& state) {
  const auto members = static_cast<unsigned>(state.range(0));
  std::vector<node_id> ids;
  for (unsigned i = 0; i < members; ++i) ids.push_back(i);
  gcs::stability_tracker mine(ids, 0);
  gcs::stability_tracker theirs(ids, 1 % members);
  std::vector<std::uint64_t> prefixes(members, 0);
  std::uint64_t tick = 0;
  for (auto _ : state) {
    ++tick;
    for (auto& p : prefixes) p = tick * 10;
    mine.set_local_prefixes(prefixes);
    theirs.set_local_prefixes(prefixes);
    benchmark::DoNotOptimize(mine.merge(theirs.make_gossip(1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_stability_merge)->Arg(3)->Arg(6)->Arg(16);

void BM_lock_table_cycle(benchmark::State& state) {
  db::lock_table lt;
  util::rng g(3);
  std::uint64_t id = 1;
  for (auto _ : state) {
    std::vector<db::item_id> items;
    for (int k = 0; k < 8; ++k)
      items.push_back(static_cast<db::item_id>(g.uniform_int(0, 1 << 16))
                      << 1);
    cert::normalize(items);
    bool granted = false;
    lt.acquire(id, items, false, [&] { granted = true; },
               [](db::lock_abort_cause) {});
    if (granted) {
      lt.release_commit(id);
    } else {
      lt.release_abort(id);
    }
    ++id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_lock_table_cycle);

void BM_lan_multicast(benchmark::State& state) {
  sim::simulator s;
  net::lan lan(s, net::lan_config{}, util::rng(4));
  for (int i = 0; i < 6; ++i) lan.add_host();
  std::uint64_t delivered = 0;
  for (int i = 0; i < 6; ++i)
    lan.set_receiver(i, [&](node_id, util::shared_bytes) { ++delivered; });
  util::buffer_writer w;
  w.put_padding(1024);
  auto payload = w.take();
  for (auto _ : state) {
    lan.multicast(0, payload);
    s.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_lan_multicast);

void BM_tpcc_generate(benchmark::State& state) {
  tpcc::workload load(tpcc::workload_profile::pentium3_1ghz(), 50,
                      util::rng(5));
  std::uint32_t i = 0;
  for (auto _ : state) {
    auto req = load.next(i % 50, i % 10);
    benchmark::DoNotOptimize(req.write_set.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_tpcc_generate);

// ---- KV workload: request generation and the Zipf sampler ----

void BM_kv_generate(benchmark::State& state) {
  // Arg is zipf theta in percent (0 = uniform, 99 = YCSB default skew).
  kv::kv_config cfg;
  cfg.zipf_theta = static_cast<double>(state.range(0)) / 100.0;
  kv::kv_workload wl(cfg);
  wl.prepare(1, 100, util::rng(6));
  auto src = wl.make_source({0, 0, 100}, util::rng(7));
  for (auto _ : state) {
    auto req = src->next(0);
    benchmark::DoNotOptimize(req.ops.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_kv_generate)->Arg(0)->Arg(99);

void BM_zipf_sample(benchmark::State& state) {
  const kv::zipf_sampler zipf(100000,
                              static_cast<double>(state.range(0)) / 100.0);
  util::rng g(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(g));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_zipf_sample)->Arg(0)->Arg(99);

}  // namespace
}  // namespace dbsm

BENCHMARK_MAIN();
