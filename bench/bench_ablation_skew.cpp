// Ablation: Zipf skew vs. abort rate under the KV workload — the
// scenario the pluggable workload seam exists for. TPC-C partitions
// contention by home warehouse, so its conflict rates barely move with
// load placement; the KV workload concentrates writes on a global hot
// key set that every site hammers concurrently. Sweeping zipf_theta
// shows certification conflicts (escalated scans racing hot-granule
// writes) and lock/preemption conflicts rising together, while committed
// throughput erodes.
//
//   $ ./bench_ablation_skew [--clients N] [--txns N] [--csv out.csv]
//                           [--json out.json]
//
// --json writes the machine-readable baseline (bench/BENCH_kv.json).
#include <cstdio>

#include "common.hpp"
#include "workload/kv.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "60", "KV clients across 3 sites");
  flags.declare("keys", "20000", "keyspace size");
  flags.declare("granule", "128", "keys per scan granule");
  flags.declare("dist", "zipfian",
                "key distribution: zipfian (stationary), latest "
                "(YCSB-D drifting hot set), or scrambled (Zipf "
                "frequencies, bit-mixed key placement)");
  flags.declare("mix", "custom",
                "operation mix: custom (30/30/25 default), a (YCSB-A "
                "50/50), b (YCSB-B 95/5), or c (YCSB-C pure reads)");
  flags.declare("json", "", "optional JSON baseline output path");
  if (!flags.parse(argc, argv)) return 1;

  const std::string dist_name = flags.get_string("dist");
  if (dist_name != "zipfian" && dist_name != "latest" &&
      dist_name != "scrambled") {
    std::fprintf(stderr, "unknown --dist '%s' (zipfian|latest|scrambled)\n",
                 dist_name.c_str());
    return 1;
  }
  const std::string mix_name = flags.get_string("mix");
  if (mix_name != "custom" && mix_name != "a" && mix_name != "b" &&
      mix_name != "c") {
    std::fprintf(stderr, "unknown --mix '%s' (custom|a|b|c)\n",
                 mix_name.c_str());
    return 1;
  }

  const std::vector<double> thetas =
      flags.get_bool("quick")
          ? std::vector<double>{0.0, 0.6, 0.95}
          : std::vector<double>{0.0, 0.3, 0.5, 0.6, 0.8, 0.9, 0.95, 0.99};

  util::text_table t;
  t.header({"Zipf theta", "tpm", "Cert aborts", "Cert %", "Preempt %",
            "Lock %", "Abort %"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"theta", "tpm", "cert_aborts", "cert_pct",
                      "preempt_pct", "lock_pct", "abort_pct"});
  std::string json = "{\n  \"benchmark\": \"kv_zipf_skew_sweep\",\n"
                     "  \"dist\": \"" + dist_name + "\",\n"
                     "  \"mix\": \"" + mix_name + "\",\n"
                     "  \"points\": [\n";

  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const double theta = thetas[i];
    core::experiment_config cfg = bench::paper_config();
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    bench::apply_common_flags(flags, cfg);
    // The sweep needs less volume than a figure reproduction: 2400
    // responses resolve the abort trend unless --txns overrides.
    if (!flags.is_set("txns")) cfg.target_responses = 2400;
    kv::kv_config k;
    k.keys = static_cast<std::uint32_t>(flags.get_int("keys"));
    k.keys_per_granule =
        static_cast<std::uint32_t>(flags.get_int("granule"));
    k.zipf_theta = theta;
    k.dist = dist_name == "latest"      ? kv::key_dist::latest
             : dist_name == "scrambled" ? kv::key_dist::scrambled
                                        : kv::key_dist::zipfian;
    k.mix_read = 0.30;
    k.mix_update = 0.30;
    k.mix_scan = 0.25;
    k.preset = mix_name == "a"   ? kv::mix::ycsb_a
               : mix_name == "b" ? kv::mix::ycsb_b
               : mix_name == "c" ? kv::mix::ycsb_c
                                 : kv::mix::custom;
    k.think_time = util::exponential_dist(0.5);
    cfg.workload = kv::factory(k);

    const auto r = bench::run_point(
        cfg, "kv skew theta=" + util::fmt(theta, 2));
    std::uint64_t lock = 0, preempt = 0, cert = 0, total = 0;
    for (db::txn_class cls = 0; cls < kv::num_classes; ++cls) {
      lock += r.stats.of(cls).aborted_lock;
      preempt += r.stats.of(cls).aborted_preempt;
      cert += r.stats.of(cls).aborted_cert;
      total += r.stats.of(cls).total();
    }
    const double denom = total == 0 ? 1.0 : static_cast<double>(total);
    const double cert_pct = 100.0 * static_cast<double>(cert) / denom;
    const double preempt_pct =
        100.0 * static_cast<double>(preempt) / denom;
    const double lock_pct = 100.0 * static_cast<double>(lock) / denom;

    t.row({util::fmt(theta, 2), util::fmt(r.tpm(), 0), util::fmt(cert),
           util::fmt(cert_pct, 2), util::fmt(preempt_pct, 2),
           util::fmt(lock_pct, 2),
           util::fmt(r.stats.abort_rate_pct(), 2)});
    csv_rows.push_back({util::fmt(theta, 2), util::fmt(r.tpm(), 0),
                        util::fmt(cert), util::fmt(cert_pct, 2),
                        util::fmt(preempt_pct, 2), util::fmt(lock_pct, 2),
                        util::fmt(r.stats.abort_rate_pct(), 2)});
    json += "    {\"theta\": " + util::fmt(theta, 2) +
            ", \"tpm\": " + util::fmt(r.tpm(), 0) +
            ", \"cert_aborts\": " + util::fmt(cert) +
            ", \"cert_abort_pct\": " + util::fmt(cert_pct, 2) +
            ", \"preempt_abort_pct\": " + util::fmt(preempt_pct, 2) +
            ", \"lock_abort_pct\": " + util::fmt(lock_pct, 2) +
            ", \"abort_pct\": " + util::fmt(r.stats.abort_rate_pct(), 2) +
            "}" + (i + 1 < thetas.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";

  bench::emit(t, flags.get_string("csv"), csv_rows);
  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::fprintf(stderr, "[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "[json] cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
