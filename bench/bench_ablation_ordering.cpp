// Ablation: ordering protocol (gcs::ordering seam) — the paper's fixed
// sequencer vs the leaderless rotating token, on an update-heavy KV mix
// (YCSB-A), both legs under the online monitors and the off-line §5.3
// safety check.
//
// The contended resource is the sequencer site's CPU (the §5.3
// bottleneck): under fixed_sequencer one site mints and multicasts every
// assignment record on top of its normal certify/apply work, so its
// protocol-CPU figure stands out; under rotating_token each site mints
// only its own keys while the token circulates, spreading that work
// across the view. Reported per leg: committed throughput, abort rate,
// cert-latency p95, the per-site protocol-CPU spread (max/min across
// sites — the concentration signal), peak-site protocol CPU, token
// control traffic, view changes, and the monitor verdict.
//
//   $ ./bench_ablation_ordering [--clients N] [--txns N] [--csv out.csv]
//                               [--json out.json] [--smoke]
//
// --json writes the machine-readable baseline (bench/BENCH_ordering.json);
// --smoke runs both legs quickly and exits nonzero on a monitor or
// safety violation, a nondeterministic rotating rerun, token traffic on
// the fixed leg (or none on the rotating leg), or a rotating
// protocol-CPU spread that is not tighter than the fixed one (CI wiring).
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "util/rng.hpp"
#include "workload/kv.hpp"

using namespace dbsm;

namespace {

struct point_result {
  gcs::ordering_kind ordering = gcs::ordering_kind::fixed_sequencer;
  core::experiment_result res;
  double peak_protocol_cpu = 0.0;
  double spread = 0.0;  // max/min protocol CPU across sites
  std::uint64_t token_ctl = 0;
};

point_result summarize(gcs::ordering_kind ord, core::experiment_result r) {
  point_result p;
  p.ordering = ord;
  double lo = 1.0, hi = 0.0;
  for (const core::site_report& s : r.sites) {
    lo = std::min(lo, s.protocol_cpu);
    hi = std::max(hi, s.protocol_cpu);
    p.token_ctl += s.token_ctl_sent;
  }
  p.peak_protocol_cpu = hi;
  p.spread = hi / std::max(lo, 1e-9);
  p.res = std::move(r);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "1500", "KV clients across 3 sites (enough "
                                   "load that ordering CPU matters)");
  flags.declare("keys", "20000", "keyspace size");
  flags.declare("json", "", "optional JSON baseline output path");
  flags.declare("smoke", "false",
                "CI mode: quick two-leg sweep + rotating rerun, nonzero "
                "exit on a monitor/safety violation, nondeterminism, or "
                "a rotating leg that does not spread protocol CPU");
  if (!flags.parse(argc, argv)) return 1;
  const bool smoke = flags.get_bool("smoke");
  const bool quick = smoke || flags.get_bool("quick");

  bool failed = false;
  std::vector<point_result> points;
  for (const gcs::ordering_kind ord :
       {gcs::ordering_kind::fixed_sequencer,
        gcs::ordering_kind::rotating_token}) {
    core::experiment_config cfg = bench::paper_config();
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    bench::apply_common_flags(flags, cfg);
    if (!flags.is_set("txns"))
      cfg.target_responses = quick ? 6 * cfg.clients : 20 * cfg.clients;
    // The protocol-bound regime (same profile as the batching ablation):
    // light execution and a fast engine, so the ordering path — not the
    // calibrated PIII commit CPU or the RAID — is the binding resource
    // and the sequencer site's concentration is visible.
    kv::kv_config k;
    k.keys = static_cast<std::uint32_t>(flags.get_int("keys"));
    k.preset = kv::mix::ycsb_a;
    k.zipf_theta = 0.5;
    k.value_bytes = 32;
    k.cpu_per_op = util::constant_dist(20e-6);
    k.think_time = util::exponential_dist(0.1);
    cfg.workload = kv::factory(k);
    cfg.replica_cfg.server.commit_cpu = microseconds(200);
    cfg.replica_cfg.server.remote_apply_cpu = microseconds(100);
    cfg.replica_cfg.server.storage.request_latency = microseconds(170);
    cfg.gcs.ordering = ord;

    const char* name = gcs::ordering_name(ord);
    point_result p = summarize(
        ord, bench::run_point(cfg, std::string("ordering ") + name));
    if (smoke && ord == gcs::ordering_kind::rotating_token) {
      // Same config, fresh cluster: the token path must be exactly
      // reproducible (timer-driven passes included).
      core::experiment_result rerun =
          bench::run_point(cfg, "ordering rotating rerun");
      if (rerun.commit_logs != p.res.commit_logs) {
        std::fprintf(stderr,
                     "[ordering] FAIL: rotating run not deterministic "
                     "(rerun commit logs differ)\n");
        failed = true;
      }
    }
    points.push_back(std::move(p));
  }

  util::text_table t;
  t.header({"Ordering", "tpm", "Abort %", "Cert p95 ms", "CPU %",
            "Peak proto %", "Proto spread", "Token msgs", "Views",
            "Safety", "Checks"});
  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back({"ordering", "tpm", "abort_pct", "cert_p95_ms",
                      "cpu_pct", "peak_protocol_cpu_pct",
                      "protocol_cpu_spread", "token_ctl_sent",
                      "view_changes", "safety_ok", "checks_ok"});
  std::string json = "{\n  \"benchmark\": \"ordering_ablation\",\n"
                     "  \"mix\": \"ycsb_a\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const point_result& p = points[i];
    const char* name = gcs::ordering_name(p.ordering);
    const double p95 = p.res.cert_latency_ms.empty()
                           ? 0.0
                           : p.res.cert_latency_ms.quantile(0.95);
    if (!p.res.checks.ok || !p.res.safety.ok) {
      std::fprintf(stderr, "[ordering] FAIL %s: %s\n", name,
                   p.res.checks.summary().c_str());
      failed = true;
    }
    t.row({name, util::fmt(p.res.tpm(), 0),
           util::fmt(p.res.stats.abort_rate_pct(), 2), util::fmt(p95, 2),
           util::fmt(100.0 * p.res.cpu_utilization, 1),
           util::fmt(100.0 * p.peak_protocol_cpu, 1),
           util::fmt(p.spread, 2), util::fmt(p.token_ctl),
           util::fmt(p.res.view_changes),
           p.res.safety.ok ? "ok" : "VIOLATION",
           p.res.checks.ok ? "ok" : "VIOLATION"});
    csv_rows.push_back({name, util::fmt(p.res.tpm(), 0),
                        util::fmt(p.res.stats.abort_rate_pct(), 2),
                        util::fmt(p95, 2),
                        util::fmt(100.0 * p.res.cpu_utilization, 1),
                        util::fmt(100.0 * p.peak_protocol_cpu, 1),
                        util::fmt(p.spread, 2), util::fmt(p.token_ctl),
                        util::fmt(p.res.view_changes),
                        p.res.safety.ok ? "1" : "0",
                        p.res.checks.ok ? "1" : "0"});
    json += std::string("    {\"ordering\": \"") + name + "\"" +
            ", \"tpm\": " + util::fmt(p.res.tpm(), 0) +
            ", \"abort_pct\": " + util::fmt(p.res.stats.abort_rate_pct(), 2) +
            ", \"cert_p95_ms\": " + util::fmt(p95, 2) +
            ", \"cpu_pct\": " + util::fmt(100.0 * p.res.cpu_utilization, 1) +
            ", \"peak_protocol_cpu_pct\": " +
            util::fmt(100.0 * p.peak_protocol_cpu, 1) +
            ", \"protocol_cpu_spread\": " + util::fmt(p.spread, 2) +
            ", \"token_ctl_sent\": " + util::fmt(p.token_ctl) +
            ", \"view_changes\": " + util::fmt(p.res.view_changes) +
            ", \"safety_ok\": " + (p.res.safety.ok ? "true" : "false") +
            ", \"checks_ok\": " + (p.res.checks.ok ? "true" : "false") +
            "}" + (i + 1 < points.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";

  // The ordering-specific gates (run in every mode; the simulation is
  // deterministic, so these are real signals, not noise).
  const point_result& fixed = points[0];
  const point_result& token = points[1];
  if (fixed.token_ctl != 0) {
    std::fprintf(stderr, "[ordering] FAIL: fixed leg sent %llu token "
                         "datagrams (must be 0)\n",
                 static_cast<unsigned long long>(fixed.token_ctl));
    failed = true;
  }
  if (token.token_ctl == 0) {
    std::fprintf(stderr,
                 "[ordering] FAIL: rotating leg sent no token datagrams\n");
    failed = true;
  }
  if (token.spread >= fixed.spread) {
    std::fprintf(stderr,
                 "[ordering] FAIL: rotating protocol-CPU spread %.3f not "
                 "tighter than fixed %.3f — the token is not spreading "
                 "the sequencer's work\n",
                 token.spread, fixed.spread);
    failed = true;
  }

  bench::emit(t, flags.get_string("csv"), csv_rows);
  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::fprintf(stderr, "[json] wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "[json] cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return failed ? 1 : 0;
}
