// Ablation (§5.2/§6): partial replication, the paper's proposed mitigation
// of the read-one/write-all disk ceiling — "The problem can be mitigated
// by using partial replication, while still providing the increased
// resilience from replication." Updates are applied at the origin plus
// k-1 further sites; certification stays global.
#include <cstdio>

#include "common.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "2000", "client count");
  flags.declare("sites", "6", "replica count");
  if (!flags.parse(argc, argv)) return 1;

  const auto sites = static_cast<unsigned>(flags.get_int("sites"));
  util::text_table t;
  t.header({"Degree", "tpm", "Latency(ms)", "Abort(%)", "Disk(%)",
            "CPU(%)", "Net KB/s"});
  std::vector<std::vector<std::string>> rows;
  for (unsigned degree : {sites, sites / 2, 2u}) {
    auto cfg = bench::paper_config();
    bench::apply_common_flags(flags, cfg);
    cfg.sites = sites;
    cfg.cpus_per_site = 1;
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    cfg.replication_degree = degree == sites ? 0 : degree;
    const std::string label =
        degree == sites ? "full (write all)"
                        : "k=" + std::to_string(degree);
    const auto r = bench::run_point(cfg, label);
    std::vector<std::string> row{
        label,
        util::fmt(r.tpm(), 0),
        util::fmt(r.stats.mean_latency_ms(), 1),
        util::fmt(r.stats.abort_rate_pct(), 2),
        util::fmt(r.disk_utilization * 100.0, 1),
        util::fmt(r.cpu_utilization * 100.0, 1),
        util::fmt(r.network_kbps, 0)};
    t.row(row);
    rows.push_back(row);
  }
  std::puts("=== Ablation: partial replication (disk ceiling mitigation) ===");
  bench::emit(t, flags.get_string("csv"), rows);
  std::puts(
      "\nExpected: smaller replication degrees cut per-site disk usage "
      "(each site applies\nonly a fraction of all updates), lifting the "
      "write-all ceiling the paper identifies\nin Fig 6(b).");
  return 0;
}
