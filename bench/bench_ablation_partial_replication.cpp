// Ablation (§5.2/§6): partial replication, the paper's proposed mitigation
// of the read-one/write-all disk ceiling — "The problem can be mitigated
// by using partial replication, while still providing the increased
// resilience from replication." Placement is the real src/place/ layer:
// each granule is assigned a k-of-N replica set, updates are applied and
// stored only at interested sites, and certification stays global — so the
// sweep reports the per-site storage/disk relief alongside the unchanged
// commit decisions. The last row replays the crash_restart campaign under
// k=2 to show the placement-filtered rejoin path, with the online placement
// monitor armed; the binary exits nonzero if any monitor or safety check
// trips.
//
//   $ ./bench_ablation_partial_replication [--sites N] [--clients N]
//       [--place rr|hashed] [--json bench/BENCH_partial.json]
#include <cstdio>

#include "common.hpp"
#include "fault/scenarios.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "2000", "client count");
  flags.declare("sites", "6", "replica count");
  flags.declare("place", "rr",
                "partial placement strategy: rr (round-robin) or hashed");
  flags.declare("json", "", "optional JSON baseline output path");
  if (!flags.parse(argc, argv)) return 1;

  const auto sites = static_cast<unsigned>(flags.get_int("sites"));
  const std::string place_name = flags.get_string("place");
  if (place_name != "rr" && place_name != "hashed") {
    std::fprintf(stderr, "unknown --place '%s' (rr|hashed)\n",
                 place_name.c_str());
    return 1;
  }
  const place::strategy strat = place_name == "hashed"
                                    ? place::strategy::hashed
                                    : place::strategy::round_robin;

  // Swept placements: full (write all), half the sites, two copies — plus
  // the k=2 crash/rejoin campaign exercising placement-filtered recovery.
  struct point {
    unsigned degree;      // 0 = full
    bool with_faults;
  };
  std::vector<point> points = {{0, false}};
  for (unsigned d : {sites / 2, 2u})
    if (d >= 2 && d < sites && (points.back().degree != d))
      points.push_back({d, false});
  points.push_back({2u, true});

  util::text_table t;
  t.header({"Placement", "tpm", "Abort(%)", "Disk(%)", "Store MB/site",
            "Applied MB/site", "Interested/Delivered", "Monitors"});
  std::vector<std::vector<std::string>> rows;
  std::string json = "{\n  \"benchmark\": \"partial_replication_placement\","
                     "\n  \"strategy\": \"" + place_name + "\","
                     "\n  \"sites\": " + util::fmt(static_cast<std::int64_t>(
                         sites)) + ",\n  \"points\": [\n";
  bool all_ok = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const point& pt = points[i];
    auto cfg = bench::paper_config();
    bench::apply_common_flags(flags, cfg);
    cfg.sites = sites;
    cfg.cpus_per_site = 1;
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    if (pt.degree > 0) cfg.placement = {strat, pt.degree};
    std::string label = pt.degree == 0
                            ? "full (write all)"
                            : "k=" + std::to_string(pt.degree);
    if (pt.with_faults) {
      // The rejoin campaign: crash the last site, placement-filtered
      // state transfer 10s later, every post-rejoin apply monitored.
      // Runs a fixed 60s window (not a response target) so the crash,
      // rejoin and post-rejoin phase all happen even under --quick.
      fault::scenarios::params prm;
      prm.sites = sites;
      prm.onset = seconds(8);
      cfg.faults = fault::scenarios::partial_k2_crash_rejoin(prm);
      cfg.enable_recovery = true;
      cfg.target_responses = 0;
      cfg.max_sim_time = seconds(60);
      label += " + crash_rejoin";
    }
    const auto r = bench::run_point(cfg, label);

    double store_mb = 0.0, applied_mb = 0.0;
    std::uint64_t delivered = 0, interested = 0;
    for (const auto& s : r.sites) {
      store_mb += static_cast<double>(s.store_bytes) / 1048576.0;
      applied_mb += static_cast<double>(s.applied_update_bytes) / 1048576.0;
      delivered += s.delivered_payload_bytes;
      interested += s.interested_payload_bytes;
    }
    store_mb /= static_cast<double>(r.sites.size());
    applied_mb /= static_cast<double>(r.sites.size());
    const double ratio =
        delivered == 0 ? 1.0
                       : static_cast<double>(interested) /
                             static_cast<double>(delivered);
    const bool ok = r.safety.ok && r.checks.ok &&
                    (!pt.with_faults || r.rejoined_sites() > 0);
    all_ok = all_ok && ok;
    if (!r.checks.ok)
      std::fprintf(stderr, "[partial] %s: monitor: %s\n", label.c_str(),
                   r.checks.summary().c_str());

    std::vector<std::string> row{
        label,
        util::fmt(r.tpm(), 0),
        util::fmt(r.stats.abort_rate_pct(), 2),
        util::fmt(r.disk_utilization * 100.0, 1),
        util::fmt(store_mb, 2),
        util::fmt(applied_mb, 2),
        util::fmt(ratio, 3),
        ok ? "ok" : "VIOLATED"};
    t.row(row);
    rows.push_back(row);
    json += "    {\"placement\": \"" + label + "\", \"degree\": " +
            util::fmt(static_cast<std::int64_t>(
                pt.degree == 0 ? sites : pt.degree)) +
            ", \"faults\": " + (pt.with_faults ? "true" : "false") +
            ", \"tpm\": " + util::fmt(r.tpm(), 0) +
            ", \"abort_pct\": " + util::fmt(r.stats.abort_rate_pct(), 2) +
            ", \"disk_pct\": " + util::fmt(r.disk_utilization * 100.0, 1) +
            ", \"store_mb_per_site\": " + util::fmt(store_mb, 2) +
            ", \"applied_mb_per_site\": " + util::fmt(applied_mb, 2) +
            ", \"interested_over_delivered\": " + util::fmt(ratio, 3) +
            ", \"checks_ok\": " + (ok ? "true" : "false") + "}" +
            (i + 1 < points.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";

  std::puts("=== Ablation: partial replication (disk ceiling mitigation) ===");
  bench::emit(t, flags.get_string("csv"), rows);
  std::puts(
      "\nExpected: smaller replica sets cut per-site storage and disk usage "
      "(each site applies\nonly the updates it replicates), lifting the "
      "write-all ceiling the paper identifies\nin Fig 6(b); commit "
      "decisions are placement-invariant (certification stays global).");

  const std::string json_path = flags.get_string("json");
  if (!json_path.empty()) {
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("JSON baseline written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
  }
  return all_ok ? 0 : 1;
}
