// Figure 6 (§5.2): resource usage versus clients for the Fig 5 systems —
// (a) CPU utilization (transaction processing + protocol jobs),
// (b) disk bandwidth utilization, (c) network traffic (KB/s, replicated
// configurations only).
#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  const bool quick = flags.get_bool("quick");
  const auto clients = bench::fig5_client_points(quick);
  const auto& systems = bench::fig5_systems();

  struct point {
    double cpu_pct, disk_pct, net_kbps;
  };
  std::map<std::string, std::map<unsigned, point>> series;

  for (const auto& sys : systems) {
    for (unsigned n : clients) {
      auto cfg = bench::paper_config();
      bench::apply_common_flags(flags, cfg);
      cfg.sites = sys.sites;
      cfg.cpus_per_site = sys.cpus;
      cfg.clients = n;
      const auto label =
          std::string(sys.label) + " / " + std::to_string(n) + " clients";
      const auto r = bench::run_point(cfg, label);
      series[sys.label][n] = {r.cpu_utilization * 100.0,
                              r.disk_utilization * 100.0, r.network_kbps};
    }
  }

  auto print_metric = [&](const char* title, auto pick,
                          bool replicated_only) {
    util::text_table t;
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> header{"Clients"};
    for (const auto& sys : systems) {
      if (replicated_only && sys.sites == 1) continue;
      header.push_back(sys.label);
    }
    t.header(header);
    rows.push_back(header);
    for (unsigned n : clients) {
      std::vector<std::string> row{std::to_string(n)};
      for (const auto& sys : systems) {
        if (replicated_only && sys.sites == 1) continue;
        row.push_back(util::fmt(pick(series[sys.label][n]), 1));
      }
      t.row(row);
      rows.push_back(row);
    }
    std::printf("\n=== Figure 6: %s ===\n", title);
    const std::string csv = flags.get_string("csv");
    bench::emit(t, csv.empty() ? "" : csv + "." + title + ".csv", rows);
  };

  print_metric("cpu_usage_pct", [](const point& p) { return p.cpu_pct; },
               false);
  print_metric("disk_usage_pct", [](const point& p) { return p.disk_pct; },
               false);
  print_metric("network_kbps", [](const point& p) { return p.net_kbps; },
               true);

  std::puts(
      "\nPaper shapes: 1 CPU saturates near 500 clients; 3 CPUs near 1500 "
      "(3x the load);\nwith 6 CPUs the bottleneck moves to disk bandwidth "
      "(read one/write all);\nnetwork bytes grow linearly with clients, 6 "
      "sites above 3 sites (membership\ntraffic).");
  return 0;
}
