#include "common.hpp"

#include <cstdio>

namespace dbsm::bench {

core::experiment_config paper_config() {
  core::experiment_config cfg;
  cfg.sites = 3;
  cfg.cpus_per_site = 1;
  cfg.clients = 500;
  cfg.target_responses = 10000;  // "simulations of 10000 transactions"
  cfg.max_sim_time = seconds(3600);
  cfg.seed = 42;
  // Defaults of replica/gcs/lan/cost models are the calibrated testbed
  // values (§4.1); profile is the PostgreSQL-profiling substitute.
  return cfg;
}

void declare_common_flags(util::flag_set& flags) {
  flags.declare("txns", "10000", "responses per configuration point");
  flags.declare("seed", "42", "experiment seed");
  flags.declare("quick", "false", "reduced sweep for smoke runs");
  flags.declare("csv", "", "optional CSV output path");
  flags.declare("cert-shards", "1",
                "hash partitions of the certification index");
  flags.declare("certify-threads", "1",
                "certification fork width (modeled + real; 1 = inline)");
}

void apply_common_flags(const util::flag_set& flags,
                        core::experiment_config& cfg) {
  cfg.target_responses = flags.get_u64("txns");
  cfg.seed = flags.get_u64("seed");
  if (flags.get_bool("quick") && !flags.is_set("txns")) {
    cfg.target_responses = 1500;
  }
  // Sharded certification: decisions are invariant, but the modeled
  // certification CPU follows the fork-join critical path, so figure
  // benches can model a multi-threaded delivery path (defaults 1/1 keep
  // every historical figure bit-identical).
  cfg.replica_cfg.cert.shards = flags.get_u64("cert-shards");
  cfg.replica_cfg.cert.certify_threads =
      static_cast<unsigned>(flags.get_u64("certify-threads"));
}

const std::vector<system_config>& fig5_systems() {
  static const std::vector<system_config> systems = {
      {"1 CPU", 1, 1},   {"3 CPU", 1, 3},   {"6 CPU", 1, 6},
      {"3 Sites", 3, 1}, {"6 Sites", 6, 1},
  };
  return systems;
}

std::vector<unsigned> fig5_client_points(bool quick) {
  if (quick) return {100, 500, 1000, 1500, 2000};
  return {100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000};
}

core::experiment_result run_point(core::experiment_config cfg,
                                  const std::string& label) {
  std::fprintf(stderr, "[run] %s ...\n", label.c_str());
  auto result = core::run_experiment(cfg);
  if (!result.safety.ok) {
    std::fprintf(stderr, "[run] %s: SAFETY VIOLATION: %s\n", label.c_str(),
                 result.safety.detail.c_str());
  }
  return result;
}

void emit(const util::text_table& table, const std::string& csv_path,
          const std::vector<std::vector<std::string>>& csv_rows) {
  std::fputs(table.to_string().c_str(), stdout);
  std::fflush(stdout);
  if (!csv_path.empty()) {
    util::csv_writer csv(csv_path);
    for (const auto& row : csv_rows) csv.row(row);
    std::fprintf(stderr, "[csv] wrote %s\n", csv_path.c_str());
  }
}

}  // namespace dbsm::bench
