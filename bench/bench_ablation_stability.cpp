// Ablation (§5.3 mitigations): under 5% random loss, sweep the group's
// total buffer space and the stability gossip period. The paper: "The
// problem is mitigated by increasing available buffer space or by
// allocating a dedicated sequencer process."
#include <cstdio>

#include "common.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  flags.declare("clients", "750", "client count");
  if (!flags.parse(argc, argv)) return 1;

  struct variant {
    const char* label;
    std::size_t buffer_msgs;
    sim_duration stab_period;
    bool dedicated_sequencer;
  };
  const gcs::group_config defaults;
  const std::size_t base = defaults.total_buffer_msgs;
  const sim_duration period = defaults.stability_period;
  const std::vector<variant> variants = {
      {"baseline", base, period, false},
      {"half buffer", base / 2, period, false},
      {"double buffer", base * 2, period, false},
      {"quad buffer", base * 4, period, false},
      {"fast gossip (10ms)", base, milliseconds(10), false},
      {"slow gossip (150ms)", base, milliseconds(150), false},
      {"dedicated sequencer", base, period, true},
  };

  util::text_table t;
  t.header({"Variant", "tpm", "p50(ms)", "p99(ms)", "Blocked(#)",
            "Blocked(ms)", "Delayed(%)", "Abort(%)"});
  std::vector<std::vector<std::string>> rows;
  for (const variant& v : variants) {
    auto cfg = bench::paper_config();
    bench::apply_common_flags(flags, cfg);
    cfg.sites = 3;
    cfg.cpus_per_site = 1;
    cfg.clients = static_cast<unsigned>(flags.get_int("clients"));
    fault::plan loss;
    loss.random_loss = 0.05;
    cfg.faults = fault::from_plan(loss);
    cfg.gcs.total_buffer_msgs = v.buffer_msgs;
    cfg.gcs.total_buffer_bytes =
        defaults.total_buffer_bytes * v.buffer_msgs / base;
    cfg.gcs.stability_period = v.stab_period;
    cfg.dedicated_sequencer = v.dedicated_sequencer;
    if (v.dedicated_sequencer) {
      // Keep the per-member share equal to the baseline's: the point of
      // the dedicated site is relieving the sequencer, not shrinking
      // everyone's buffers by adding a member.
      cfg.gcs.total_buffer_msgs = v.buffer_msgs * 4 / 3;
      cfg.gcs.total_buffer_bytes = cfg.gcs.total_buffer_bytes * 4 / 3;
    }
    const auto r = bench::run_point(cfg, v.label);
    const auto lat = r.stats.pooled_latency_ms();
    const double delayed_pct =
        r.cert_latency_ms.empty()
            ? 0.0
            : 100.0 * (1.0 - r.cert_latency_ms.ecdf_at(10.0));
    std::vector<std::string> row{
        v.label,
        util::fmt(r.tpm(), 0),
        util::fmt(lat.quantile(0.50), 1),
        util::fmt(lat.quantile(0.99), 1),
        util::fmt(static_cast<std::int64_t>(r.blocked_episodes)),
        util::fmt(r.blocked_ms, 1),
        util::fmt(delayed_pct, 1),
        util::fmt(r.stats.abort_rate_pct(), 2)};
    t.row(row);
    rows.push_back(row);
  }
  std::puts(
      "=== Ablation: buffer space / stability period / dedicated "
      "sequencer under 5% random loss ===");
  bench::emit(t, flags.get_string("csv"), rows);
  std::puts(
      "\nExpected: larger buffers and faster gossip reduce blocking "
      "episodes and the\nlatency tail; a dedicated sequencer removes the "
      "contended share (§5.3).");
  return 0;
}
