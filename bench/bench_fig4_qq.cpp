// Figure 4 (§4.2): Q-Q plots of transaction latency, simulation vs real
// system, for (a) read-only and (b) update transactions — a run of the
// TPC-C benchmark with 20 clients and 5000 transactions on one site.
//
// Substitution (DESIGN.md): the paper compares its model against a real
// PostgreSQL testbed run. We compare the simulation against a *reference
// run* — an independently-seeded execution with multiplicative measurement
// noise — standing in for the profiled real system; matching quantiles
// validate that the latency distribution is stable and moment-faithful,
// which is what the paper's near-diagonal Q-Q plots demonstrate.
#include <cstdio>

#include "common.hpp"
#include "tpcc/profile.hpp"

using namespace dbsm;

namespace {

struct latency_split {
  util::sample_set read_only_ms;
  util::sample_set update_ms;
};

latency_split collect(std::uint64_t seed, bool add_noise) {
  core::experiment_config cfg = bench::paper_config();
  cfg.sites = 1;
  cfg.cpus_per_site = 1;
  cfg.clients = 20;  // §4.2: "a run of the TPC-C benchmark with 20 clients"
  cfg.target_responses = 5000;
  cfg.seed = seed;
  const auto result = core::run_experiment(cfg);

  util::rng noise(seed ^ 0xabcdef);
  latency_split out;
  for (db::txn_class c = 0;
       c < static_cast<db::txn_class>(result.stats.classes()); ++c) {
    const auto& samples = result.stats.of(c).commit_latency_ms;
    for (double v : samples.sorted()) {
      const double measured =
          add_noise ? v * (1.0 + noise.normal(0.0, 0.05)) : v;
      if (result.class_is_update[c]) {
        out.update_ms.add(measured);
      } else {
        out.read_only_ms.add(measured);
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("seed", "42", "simulation seed");
  flags.declare("points", "20", "quantile points per plot");
  flags.declare("csv", "", "optional CSV output path");
  if (!flags.parse(argc, argv)) return 1;

  const auto seed = flags.get_u64("seed");
  std::fprintf(stderr, "[run] simulation run (seed %llu)...\n",
               static_cast<unsigned long long>(seed));
  const latency_split sim_run = collect(seed, false);
  std::fprintf(stderr, "[run] reference ('real') run...\n");
  const latency_split real_run = collect(seed + 1000, true);

  const auto n = static_cast<std::size_t>(flags.get_int("points"));
  auto print_qq = [&](const char* title, const util::sample_set& a,
                      const util::sample_set& b) {
    util::text_table t;
    t.header({"Simulation (ms)", "Real (ms)"});
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"sim_ms", "real_ms"});
    double max_rel_err = 0;
    for (const auto& [x, y] : util::qq_series(a, b, n)) {
      t.row({util::fmt(x, 2), util::fmt(y, 2)});
      rows.push_back({util::fmt(x, 4), util::fmt(y, 4)});
      if (x > 1.0) {
        max_rel_err = std::max(max_rel_err, std::abs(y - x) / x);
      }
    }
    std::printf("\n=== Figure 4: Q-Q %s (n_sim=%zu, n_real=%zu) ===\n",
                title, a.size(), b.size());
    const std::string csv = flags.get_string("csv");
    bench::emit(t, csv.empty() ? "" : csv + "." + title + ".csv", rows);
    std::printf("max relative quantile deviation: %.1f%%\n",
                max_rel_err * 100.0);
  };

  print_qq("read_only", sim_run.read_only_ms, real_run.read_only_ms);
  print_qq("update", sim_run.update_ms, real_run.update_ms);
  std::puts(
      "\nPaper shape: both Q-Q plots lie close to the diagonal — the "
      "simulated latency\ndistribution approximates the real system's.");
  return 0;
}
