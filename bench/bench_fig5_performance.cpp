// Figure 5 (§5.1): throughput (committed tpm), average latency, and abort
// rate versus number of clients (100–2000), for five system
// configurations: centralized with 1/3/6 CPUs and replicated with 3/6
// single-CPU sites.
#include <map>

#include "common.hpp"

using namespace dbsm;

int main(int argc, char** argv) {
  util::flag_set flags;
  bench::declare_common_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  const bool quick = flags.get_bool("quick");
  const auto clients = bench::fig5_client_points(quick);
  const auto& systems = bench::fig5_systems();

  struct point {
    double tpm, latency_ms, abort_pct;
  };
  std::map<std::string, std::map<unsigned, point>> series;

  for (const auto& sys : systems) {
    for (unsigned n : clients) {
      auto cfg = bench::paper_config();
      bench::apply_common_flags(flags, cfg);
      cfg.sites = sys.sites;
      cfg.cpus_per_site = sys.cpus;
      cfg.clients = n;
      const auto label =
          std::string(sys.label) + " / " + std::to_string(n) + " clients";
      const auto r = bench::run_point(cfg, label);
      series[sys.label][n] = {r.tpm(), r.stats.mean_latency_ms(),
                              r.stats.abort_rate_pct()};
    }
  }

  auto print_metric = [&](const char* title, auto pick) {
    util::text_table t;
    std::vector<std::vector<std::string>> csv_rows;
    std::vector<std::string> header{"Clients"};
    for (const auto& sys : systems) header.push_back(sys.label);
    t.header(header);
    csv_rows.push_back(header);
    for (unsigned n : clients) {
      std::vector<std::string> row{std::to_string(n)};
      for (const auto& sys : systems)
        row.push_back(util::fmt(pick(series[sys.label][n]), 1));
      t.row(row);
      csv_rows.push_back(row);
    }
    std::printf("\n=== Figure 5: %s ===\n", title);
    const std::string csv = flags.get_string("csv");
    bench::emit(t, csv.empty() ? "" : csv + "." + title + ".csv", csv_rows);
  };

  print_metric("throughput_tpm",
               [](const point& p) { return p.tpm; });
  print_metric("latency_ms",
               [](const point& p) { return p.latency_ms; });
  print_metric("abort_rate_pct",
               [](const point& p) { return p.abort_pct; });

  std::puts(
      "\nPaper shapes: 3 sites ~ 3-CPU centralized, 6 sites ~ 6-CPU; "
      "1 CPU saturates near 500 clients (~2600 tpm), 3 sites near 1500 "
      "(~7000 tpm), 6 sites scale past 2000 (~9000 tpm).");
  return 0;
}
