// Shared scaffolding for the per-figure/table benchmark binaries.
//
// Every binary reproduces one table or figure of the paper's evaluation
// (§4–5) with the calibrated testbed model (PIII 1 GHz × configurable
// CPUs, 100 Mbps switched Ethernet, 9.486 MB/s RAID write ceiling) and
// prints the same rows/series the paper reports. CSV output is optional.
#ifndef DBSM_BENCH_COMMON_HPP
#define DBSM_BENCH_COMMON_HPP

#include <string>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace dbsm::bench {

/// The paper's testbed configuration (§4.1) as an experiment config.
core::experiment_config paper_config();

/// Declares the flags every bench shares (--txns, --seed, --quick, --csv).
void declare_common_flags(util::flag_set& flags);

/// Applies common flags onto a config. --quick scales the run down for
/// smoke use (fewer transactions); --txns overrides the response target.
void apply_common_flags(const util::flag_set& flags,
                        core::experiment_config& cfg);

/// The five system configurations of Fig 5/6 in paper order.
struct system_config {
  const char* label;
  unsigned sites;
  unsigned cpus;
};
const std::vector<system_config>& fig5_systems();

/// Client counts swept in Fig 5/6.
std::vector<unsigned> fig5_client_points(bool quick);

/// Runs one configured point and prints a one-line progress note.
core::experiment_result run_point(core::experiment_config cfg,
                                  const std::string& label);

/// Prints an aligned table and optionally appends it to a CSV file.
void emit(const util::text_table& table, const std::string& csv_path,
          const std::vector<std::vector<std::string>>& csv_rows);

}  // namespace dbsm::bench

#endif  // DBSM_BENCH_COMMON_HPP
