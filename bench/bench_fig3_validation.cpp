// Figure 3 (§4.2): validation of the centralized simulation runtime.
//   (a) bandwidth written to a UDP socket by one flooding process,
//   (b) bandwidth observed at the receiver on the 100 Mbps Ethernet,
//   (c) average round-trip time,
// each versus message size (64 B – 4 KB).
//
// "CSRT" series: measured by running real flooding/ping-pong protocol code
// through the runtime and network model. "Real" series: the analytic
// reference describing the paper's testbed (the same four CSRT cost
// parameters plus the wire model) — the validation criterion is that the
// simulation reproduces the configured reference, as the paper's Fig 3
// compares simulation against its measured testbed. Note: unlike SSFNet,
// our network enforces the Ethernet MTU for UDP, so the paper's >1000-byte
// round-trip divergence artifact does not occur (§4.2 and DESIGN.md).
#include <cstdio>

#include "common.hpp"
#include "csrt/sim_env.hpp"
#include "net/lan.hpp"
#include "net/udp_transport.hpp"

using namespace dbsm;

namespace {

struct rig {
  sim::simulator sim;
  net::lan lan{sim, net::lan_config{}, util::rng(3)};
  csrt::cpu_pool cpu0{sim, 1};
  csrt::cpu_pool cpu1{sim, 1};
  std::unique_ptr<net::udp_transport> t0;
  std::unique_ptr<net::udp_transport> t1;
  std::unique_ptr<csrt::sim_env> env0_ptr;
  std::unique_ptr<csrt::sim_env> env1_ptr;
  csrt::sim_env& env0;
  csrt::sim_env& env1;

  rig()
      : t0((lan.add_host(), lan.add_host(),
            std::make_unique<net::udp_transport>(lan, 0))),
        t1(std::make_unique<net::udp_transport>(lan, 1)),
        env0_ptr(std::make_unique<csrt::sim_env>(sim, cpu0, *t0,
                                                 make_cfg(0),
                                                 util::rng(10))),
        env1_ptr(std::make_unique<csrt::sim_env>(sim, cpu1, *t1,
                                                 make_cfg(1),
                                                 util::rng(11))),
        env0(*env0_ptr), env1(*env1_ptr) {
    t0->attach(env0);
    t1->attach(env1);
  }

  static csrt::sim_env::config make_cfg(node_id self) {
    csrt::sim_env::config cfg;
    cfg.self = self;
    cfg.peers = {0, 1};
    return cfg;
  }
};

util::shared_bytes payload_of(std::size_t n) {
  util::buffer_writer w;
  w.put_padding(n);
  return w.take();
}

/// (a)+(b): node 0 floods `count` datagrams of `size` bytes at node 1.
/// Returns {app write Mbit/s, receiver Mbit/s}.
std::pair<double, double> flood(std::size_t size, unsigned count) {
  rig r;
  auto msg = payload_of(size);
  std::uint64_t received_bytes = 0;
  sim_time last_rx = 0;
  r.env1.set_handler([&](node_id, util::shared_bytes m) {
    received_bytes += m->size();
    last_rx = r.sim.now();
  });
  // Real code: a tight send loop; each send charges the CSRT send cost,
  // so the simulated process writes as fast as its CPU allows.
  sim_time send_done = 0;
  r.env0.post([&] {
    for (unsigned i = 0; i < count; ++i) r.env0.send(1, msg);
    send_done = r.env0.now();
  });
  r.sim.run();
  const double write_mbps =
      static_cast<double>(size) * count * 8.0 / to_seconds(send_done) / 1e6;
  const double recv_mbps =
      last_rx > 0 ? static_cast<double>(received_bytes) * 8.0 /
                        to_seconds(last_rx) / 1e6
                  : 0.0;
  return {write_mbps, recv_mbps};
}

/// (c): ping-pong between the nodes; returns mean round-trip in µs.
double round_trip(std::size_t size, unsigned rounds) {
  rig r;
  auto msg = payload_of(size);
  util::running_stats rtt_us;
  sim_time sent_at = 0;
  unsigned remaining = rounds;

  r.env1.set_handler([&](node_id from, util::shared_bytes m) {
    r.env1.send(from, m);  // echo
  });
  std::function<void()> ping = [&] {
    sent_at = r.env0.now();
    r.env0.send(1, msg);
  };
  r.env0.set_handler([&](node_id, util::shared_bytes) {
    rtt_us.add(to_micros(r.env0.now() - sent_at));
    if (--remaining > 0) ping();
  });
  r.env0.post(ping);
  r.sim.run();
  return rtt_us.mean();
}

// Analytic reference (the "Real" testbed curves).
double ref_write_mbps(const csrt::net_cost_model& c, std::size_t size) {
  return static_cast<double>(size) * 8.0 /
         (static_cast<double>(c.send_cost(size)) / 1e9) / 1e6;
}

double ref_recv_mbps(const net::lan_config& l,
                     const csrt::net_cost_model& c, std::size_t size) {
  const std::size_t per_frame = l.mtu - l.ip_udp_header;
  const std::size_t frames = (size + per_frame - 1) / per_frame;
  const std::size_t wire = size + frames * (l.ip_udp_header +
                                            l.frame_overhead);
  const double wire_mbps =
      static_cast<double>(size) / wire * l.bandwidth_bps / 1e6;
  return std::min(wire_mbps, ref_write_mbps(c, size));
}

double ref_rtt_us(const net::lan_config& l, const csrt::net_cost_model& c,
                  std::size_t size) {
  const std::size_t per_frame = l.mtu - l.ip_udp_header;
  const std::size_t frames = (size + per_frame - 1) / per_frame;
  const std::size_t wire = size + frames * (l.ip_udp_header +
                                            l.frame_overhead);
  const double ser_us = wire * 8.0 / l.bandwidth_bps * 1e6;
  const double one_way = static_cast<double>(c.send_cost(size)) / 1e3 +
                         2 * ser_us + to_micros(l.switch_latency) +
                         static_cast<double>(c.recv_cost(size)) / 1e3;
  return 2 * one_way;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  flags.declare("rounds", "200", "ping-pong rounds per size");
  flags.declare("flood", "500", "datagrams per flooding run");
  flags.declare("csv", "", "optional CSV output path");
  if (!flags.parse(argc, argv)) return 1;

  const csrt::net_cost_model costs;  // CSRT defaults (§4.1 parameters)
  const net::lan_config lan_cfg;
  const std::vector<std::size_t> sizes = {64,   128,  256,  512, 1000,
                                          1472, 2048, 3000, 4096};

  util::text_table t;
  t.header({"Size(B)", "Write Real(Mb/s)", "Write CSRT", "Recv Real(Mb/s)",
            "Recv CSRT", "RTT Real(us)", "RTT CSRT"});
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"size", "write_real", "write_csrt", "recv_real",
                  "recv_csrt", "rtt_real", "rtt_csrt"});
  for (std::size_t size : sizes) {
    const auto [write_mbps, recv_mbps] =
        flood(size, static_cast<unsigned>(flags.get_int("flood")));
    const double rtt =
        round_trip(size, static_cast<unsigned>(flags.get_int("rounds")));
    std::vector<std::string> row{
        util::fmt(static_cast<std::int64_t>(size)),
        util::fmt(ref_write_mbps(costs, size), 1),
        util::fmt(write_mbps, 1),
        util::fmt(ref_recv_mbps(lan_cfg, costs, size), 1),
        util::fmt(recv_mbps, 1),
        util::fmt(ref_rtt_us(lan_cfg, costs, size), 1),
        util::fmt(rtt, 1)};
    t.row(row);
    rows.push_back(row);
  }
  std::puts("=== Figure 3: CSRT validation (Real reference vs CSRT) ===");
  bench::emit(t, flags.get_string("csv"), rows);
  std::puts(
      "\nPaper shapes: write bandwidth CPU-bound, rising with size toward "
      "~500+ Mbit/s;\nreceive bandwidth wire-capped near ~95 Mbit/s past "
      "~1 KB; RTT linear in size\n(~200 us small to ~1.4 ms at 4 KB).");
  return 0;
}
